//! Multi-corner / multi-mode scenario descriptions.
//!
//! Signoff is never a single operating point: the answer a designer needs
//! is the worst slack over every (PVT corner, SDC mode) pair. This module
//! gives those pairs a first-class shape — a [`CornerDef`] names an
//! operating point of a concrete technology, a [`Mode`] names an SDC
//! constraint set, and a [`Scenario`] is one (corner, mode) cell of the
//! MCMM matrix. [`crate::AnalysisRequest::scenarios`] accepts a set of
//! them and the batch engine (`crate::mcmm`) fans the N×M jobs over the
//! work pool while sharing everything that is scenario-invariant.
//!
//! Corner specs follow one grammar everywhere (CLI flags, the serve
//! daemon's `analyze_batch` op, tests) — see [`CornerDef::parse`].

use sta_cells::{Corner, Technology};

/// Errors from parsing a corner or mode specification.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The corner spec matched no known form.
    BadCorner(String),
    /// The mode spec matched no known form.
    BadMode(String),
    /// A scenario set must contain at least one scenario.
    EmptySet,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::BadCorner(s) => write!(
                f,
                "bad corner spec {s:?} (expected fan130|fan90|fan65, 130nm|90nm|65nm, \
                 slow|typ|fast, TECH:PVT, or T,V)"
            ),
            ScenarioError::BadMode(s) => write!(f, "bad mode spec {s:?}"),
            ScenarioError::EmptySet => write!(f, "scenario set is empty"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A named operating point: a concrete technology plus a PVT corner.
///
/// The name is what reports and merged-slack attributions show
/// (`"fan90"`, `"90nm:slow"`, `"75,0.95"`); the technology decides which
/// characterized timing library the scenario uses and the corner is the
/// point the compiled delay kernel is specialized for.
#[derive(Clone, Debug, PartialEq)]
pub struct CornerDef {
    /// Display name, unique within a scenario set by construction.
    pub name: String,
    /// Technology node whose characterization this corner evaluates.
    pub tech: Technology,
    /// The operating point itself.
    pub corner: Corner,
}

impl CornerDef {
    /// The nominal corner of a technology, named after the node.
    pub fn nominal(tech: Technology) -> Self {
        let corner = Corner::nominal(&tech);
        CornerDef {
            name: tech.name.clone(),
            tech,
            corner,
        }
    }

    /// Parses a corner spec against a base technology. The grammar,
    /// shared by the CLI `--corner`/`--corners` flags and the serve
    /// daemon:
    ///
    /// * `fan130` / `fan90` / `fan65` — the fanout-characterized node at
    ///   its nominal point (the ISSUE/paper spelling);
    /// * `130nm` / `90` / `65nm` — same, plain node names;
    /// * `slow` / `typ` (or `typical`, `nominal`) / `fast` — named PVT
    ///   points of `base` (see [`Corner::slow`] / [`Corner::fast`]);
    /// * `TECH:PVT`, e.g. `90nm:slow` — named PVT point of another node;
    /// * `T,V`, e.g. `75,0.95` — explicit temperature (°C) and supply
    ///   (V) at `base`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::BadCorner`] when the spec matches no form.
    pub fn parse(spec: &str, base: &Technology) -> Result<Self, ScenarioError> {
        let s = spec.trim();
        if s.is_empty() {
            return Err(ScenarioError::BadCorner(spec.to_string()));
        }
        // T,V numeric pair at the base technology.
        if let Some((t, v)) = s.split_once(',') {
            let (t, v) = (t.trim().parse::<f64>(), v.trim().parse::<f64>());
            return match (t, v) {
                (Ok(temperature), Ok(vdd)) if vdd > 0.0 && temperature.is_finite() => {
                    Ok(CornerDef {
                        name: s.to_string(),
                        tech: base.clone(),
                        corner: Corner { temperature, vdd },
                    })
                }
                _ => Err(ScenarioError::BadCorner(spec.to_string())),
            };
        }
        // TECH:PVT combined form.
        if let Some((tech, pvt)) = s.split_once(':') {
            let tech = Technology::by_name(tech)
                .ok_or_else(|| ScenarioError::BadCorner(spec.to_string()))?;
            let corner =
                named_pvt(pvt, &tech).ok_or_else(|| ScenarioError::BadCorner(spec.to_string()))?;
            return Ok(CornerDef {
                name: s.to_string(),
                tech,
                corner,
            });
        }
        // Named PVT point of the base technology.
        if let Some(corner) = named_pvt(s, base) {
            return Ok(CornerDef {
                name: s.to_string(),
                tech: base.clone(),
                corner,
            });
        }
        // A node name, "fan"-prefixed or plain, at its nominal point.
        let node = s.strip_prefix("fan").unwrap_or(s);
        if let Some(tech) = Technology::by_name(node) {
            let corner = Corner::nominal(&tech);
            return Ok(CornerDef {
                name: s.to_string(),
                tech,
                corner,
            });
        }
        Err(ScenarioError::BadCorner(spec.to_string()))
    }

    /// Parses a comma-free, `+`-free list of corner specs (the individual
    /// specs are semicolon- or whitespace-free; the list separator is a
    /// comma **except** inside a `T,V` pair, so list items that contain a
    /// comma must be the last form). To sidestep that ambiguity list
    /// parsing splits on commas only between items whose halves are not
    /// both numeric — in practice: `fan130,fan90,75,0.95` parses as
    /// `[fan130, fan90, 75,0.95]`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::BadCorner`] for an unparsable item,
    /// [`ScenarioError::EmptySet`] for an empty list.
    pub fn parse_list(list: &str, base: &Technology) -> Result<Vec<Self>, ScenarioError> {
        let mut out: Vec<CornerDef> = Vec::new();
        let mut pending: Option<String> = None;
        for item in list.split(',') {
            let item = item.trim();
            if let Some(prev) = pending.take() {
                // Try to complete a T,V pair started by the previous item.
                let joined = format!("{prev},{item}");
                if let Ok(c) = CornerDef::parse(&joined, base) {
                    out.push(c);
                    continue;
                }
                out.push(CornerDef::parse(&prev, base)?);
            }
            if item.parse::<f64>().is_ok() {
                pending = Some(item.to_string());
            } else if !item.is_empty() {
                out.push(CornerDef::parse(item, base)?);
            }
        }
        if let Some(prev) = pending {
            out.push(CornerDef::parse(&prev, base)?);
        }
        if out.is_empty() {
            return Err(ScenarioError::EmptySet);
        }
        Ok(out)
    }
}

fn named_pvt(name: &str, tech: &Technology) -> Option<Corner> {
    match name.trim() {
        "slow" | "ss" | "worst" => Some(Corner::slow(tech)),
        "typ" | "typical" | "nominal" | "tt" => Some(Corner::nominal(tech)),
        "fast" | "ff" | "best" => Some(Corner::fast(tech)),
        _ => None,
    }
}

/// A named SDC constraint set (an analysis *mode*), with an optional
/// explicit required-time override that takes precedence over the SDC
/// (mirroring the single-run resolution order of
/// [`crate::AnalysisContext::slack`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Mode {
    /// Display name (`"func"`, `"test"`, …).
    pub name: String,
    /// SDC constraint text, parsed once per batch against the netlist.
    pub sdc: Option<String>,
    /// Explicit required arrival at the outputs, ps.
    pub required: Option<f64>,
}

impl Mode {
    /// The unconstrained default mode (requirement falls back to 90 % of
    /// the structural worst arrival, exactly as a mode-less run).
    pub fn unconstrained() -> Self {
        Mode {
            name: "default".into(),
            sdc: None,
            required: None,
        }
    }

    /// A mode carrying SDC constraint text.
    pub fn with_sdc(name: &str, sdc: &str) -> Self {
        Mode {
            name: name.to_string(),
            sdc: Some(sdc.to_string()),
            required: None,
        }
    }

    /// A mode with an explicit output requirement (ps).
    pub fn with_required(name: &str, ps: f64) -> Self {
        Mode {
            name: name.to_string(),
            sdc: None,
            required: Some(ps),
        }
    }
}

impl Default for Mode {
    fn default() -> Self {
        Mode::unconstrained()
    }
}

/// One cell of the MCMM matrix: an operating corner analyzed under a
/// constraint mode.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The operating point.
    pub corner: CornerDef,
    /// The constraint set.
    pub mode: Mode,
}

impl Scenario {
    /// Builds a scenario from its two halves.
    pub fn new(corner: CornerDef, mode: Mode) -> Self {
        Scenario { corner, mode }
    }

    /// The default single-run scenario: nominal 90 nm, unconstrained.
    pub fn nominal() -> Self {
        Scenario {
            corner: CornerDef::nominal(Technology::n90()),
            mode: Mode::unconstrained(),
        }
    }

    /// Canonical display name, `corner/mode`.
    pub fn name(&self) -> String {
        format!("{}/{}", self.corner.name, self.mode.name)
    }

    /// The full N×M cross product of corners and modes, corners-major —
    /// the batch shape `--corners a,b --modes x,y` expands to.
    pub fn matrix(corners: &[CornerDef], modes: &[Mode]) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(corners.len() * modes.len());
        for c in corners {
            for m in modes {
                out.push(Scenario::new(c.clone(), m.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_grammar_covers_all_forms() {
        let base = Technology::n90();
        let fan = CornerDef::parse("fan130", &base).unwrap();
        assert_eq!(
            (fan.name.as_str(), fan.tech.name.as_str()),
            ("fan130", "130nm")
        );
        assert_eq!(fan.corner, Corner::nominal(&Technology::n130()));

        let plain = CornerDef::parse("65nm", &base).unwrap();
        assert_eq!(plain.tech.name, "65nm");

        let slow = CornerDef::parse("slow", &base).unwrap();
        assert_eq!(
            (slow.tech.name.as_str(), slow.corner),
            ("90nm", Corner::slow(&base))
        );

        let combined = CornerDef::parse("130nm:fast", &base).unwrap();
        assert_eq!(combined.corner, Corner::fast(&Technology::n130()));

        let numeric = CornerDef::parse("75,0.95", &base).unwrap();
        assert_eq!(
            (numeric.corner.temperature, numeric.corner.vdd),
            (75.0, 0.95)
        );

        for bad in ["", "fan45", "90nm:warm", "75,-1", "75,", "nope"] {
            assert!(CornerDef::parse(bad, &base).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn corner_list_handles_numeric_pairs() {
        let base = Technology::n90();
        let list = CornerDef::parse_list("fan130,fan90,75,0.95,slow", &base).unwrap();
        let names: Vec<&str> = list.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["fan130", "fan90", "75,0.95", "slow"]);
        assert!(CornerDef::parse_list("", &base).is_err());
        assert!(CornerDef::parse_list("fan130,bogus", &base).is_err());
    }

    #[test]
    fn matrix_is_corners_major() {
        let base = Technology::n90();
        let corners = CornerDef::parse_list("typ,slow", &base).unwrap();
        let modes = vec![Mode::with_required("m1", 500.0), Mode::unconstrained()];
        let m = Scenario::matrix(&corners, &modes);
        let names: Vec<String> = m.iter().map(Scenario::name).collect();
        assert_eq!(names, ["typ/m1", "typ/default", "slow/m1", "slow/default"]);
    }
}
