//! The multi-corner / multi-mode (MCMM) batch engine.
//!
//! One netlist, many scenarios: the batch runs every [`Scenario`] of an
//! [`crate::AnalysisRequest`] while doing each piece of scenario-invariant
//! work exactly once —
//!
//! | shared state            | depends on              | built       |
//! |-------------------------|-------------------------|-------------|
//! | cell library + netlist  | circuit                 | once        |
//! | characterized timing    | technology              | per tech    |
//! | bitsim schedule         | netlist                 | once        |
//! | compiled delay kernel   | (technology, corner)    | per corner  |
//! | parsed SDC constraints  | mode                    | per mode    |
//!
//! The N×M scenario jobs then fan out over a crossbeam work-stealing pool
//! (`batch_threads` workers; the idiom of `crate::parallel`). Every job is
//! an *independent, deterministic* single-scenario analysis over shared
//! read-only state, so each scenario's path set — and therefore its
//! [`CertificateSet`] bytes — is identical to an independent
//! single-scenario run at any batch width. The merge layer below is pure
//! aggregation over finished per-scenario reports; it cannot change any
//! per-scenario result, which is what keeps the single-run audit oracles
//! (lint `--verify-paths`, `--audit-flow`) applicable per scenario.
//!
//! The merged view is canonical: scenarios are ranked by slack with ties
//! broken toward the lexicographically smallest scenario name, so
//! [`MergedSlackReport`] is byte-identical under any submission-order
//! permutation of the same scenario set.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::deque::{Injector, Steal};
use serde::{Deserialize, Serialize};
use sta_cells::Library;
use sta_charlib::{CompiledCorner, TimingLibrary};
use sta_logic::Schedule;
use sta_netlist::Netlist;
use sta_obs::LocalSpans;

use crate::analysis::{AnalysisError, AnalysisRequest, RequiredSource};
use crate::enumerate::{EnumerationConfig, EnumerationStats, PathEnumerator};
use crate::path::TruePath;
use crate::report::CertificateSet;
use crate::scenario::{Scenario, ScenarioError};
use crate::sdc::{parse_sdc, Constraints};
use crate::slack::{slack_report, SlackReport};

/// One finished scenario of a batch: the scenario description plus the
/// same results an independent single-scenario run would produce.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Which (corner, mode) cell this is.
    pub scenario: Scenario,
    /// Enumerated true paths, canonically ordered.
    pub paths: Vec<TruePath>,
    /// Engine statistics of the enumeration.
    pub stats: EnumerationStats,
    /// Structural slack report at the resolved requirement.
    pub slack: SlackReport,
    /// Worst structural arrival over the primary outputs, ps.
    pub structural_worst: f64,
    /// The requirement the slack report used, ps.
    pub required: f64,
    /// How the requirement was chosen (mode-explicit > SDC > default).
    pub required_source: RequiredSource,
}

/// The worst timing of one primary output across every scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MergedEndpoint {
    /// Output net name.
    pub output: String,
    /// Worst (most negative) slack over all scenarios, ps.
    pub slack: f64,
    /// Structural arrival of the dominating scenario, ps.
    pub arrival: f64,
    /// Requirement of the dominating scenario, ps.
    pub required: f64,
    /// Name of the dominating scenario (`corner/mode`).
    pub scenario: String,
}

/// The cross-scenario merge: worst slack per endpoint with the dominating
/// scenario identified. Pure aggregation over per-scenario reports —
/// building it never changes any per-scenario result — and canonical in
/// the scenario *set*, not the submission order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MergedSlackReport {
    /// One entry per primary output, in netlist output order.
    pub endpoints: Vec<MergedEndpoint>,
}

impl MergedSlackReport {
    /// Merges finished scenarios. Submission order does not matter: for
    /// every endpoint the dominating scenario is the one with the
    /// smallest slack, ties broken toward the lexicographically smallest
    /// scenario name.
    pub fn merge(nl: &Netlist, outcomes: &[ScenarioOutcome]) -> Self {
        let mut ranked: Vec<&ScenarioOutcome> = outcomes.iter().collect();
        ranked.sort_by_key(|a| a.scenario.name());
        let endpoints = nl
            .outputs()
            .iter()
            .map(|&o| {
                let best = ranked
                    .iter()
                    .min_by(|a, b| a.slack.of(o).total_cmp(&b.slack.of(o)))
                    .expect("at least one scenario");
                MergedEndpoint {
                    output: nl.net_label(o),
                    slack: best.slack.of(o),
                    arrival: best.slack.timing.arrival[o.index()],
                    required: best.required,
                    scenario: best.scenario.name(),
                }
            })
            .collect();
        MergedSlackReport { endpoints }
    }

    /// The worst endpoint of the whole matrix.
    pub fn worst(&self) -> Option<&MergedEndpoint> {
        self.endpoints
            .iter()
            .min_by(|a, b| a.slack.total_cmp(&b.slack))
    }

    /// Whether every endpoint meets its requirement in every scenario.
    pub fn passes(&self) -> bool {
        self.endpoints.iter().all(|e| e.slack >= 0.0)
    }

    /// Canonical JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// A finished batch: shared inputs, per-scenario outcomes (in submission
/// order), and the cross-scenario merge.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Requested circuit name.
    pub circuit: String,
    /// The standard cell library.
    pub lib: Library,
    /// Technology-mapped netlist (shared by every scenario).
    pub netlist: Netlist,
    /// Primary-input slew, ps.
    pub input_slew: f64,
    /// Per-scenario results, in submission order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Worst slack per endpoint across all scenarios.
    pub merged: MergedSlackReport,
    /// Wall-clock time of the whole batch, seconds.
    pub elapsed_s: f64,
}

impl BatchOutcome {
    /// The path certificates of scenario `idx` — byte-identical to the
    /// certificates an independent single-scenario run would emit.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn certificates(&self, idx: usize) -> CertificateSet {
        CertificateSet::new(
            &self.netlist,
            self.input_slew,
            self.scenarios[idx].paths.clone(),
        )
    }

    /// The scenario outcome with the given `corner/mode` name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioOutcome> {
        self.scenarios.iter().find(|s| s.scenario.name() == name)
    }
}

/// Everything one scenario job needs, all shared and read-only.
struct Job {
    index: usize,
    scenario: Scenario,
    tlib: Arc<TimingLibrary>,
    kernel: Option<Arc<CompiledCorner>>,
    schedule: Option<Arc<Schedule>>,
    constraints: Option<Arc<Constraints>>,
}

pub(crate) fn run_batch(req: &AnalysisRequest) -> Result<BatchOutcome, AnalysisError> {
    let scenarios = req.scenarios.clone();
    if scenarios.is_empty() {
        return Err(AnalysisError::Scenario(ScenarioError::EmptySet));
    }
    let obs = req.obs.clone();
    let t0 = Instant::now();
    let root = obs.span_with(
        "mcmm",
        vec![
            ("circuit", req.circuit.clone()),
            ("scenarios", scenarios.len().to_string()),
            ("batch_threads", req.batch_threads.to_string()),
        ],
    );
    obs.counter("mcmm.scenarios").add(scenarios.len() as u64);
    // Coordinator-side children get the low ordinals; scenario subtrees
    // start after them. Everything here runs on one thread, so the span
    // skeleton is identical at any batch width.
    let mut coord_children: u64 = 0;

    let (lib, netlist) = {
        let _load = root.child("load");
        coord_children += 1;
        let lib = Library::standard();
        let nl = match &req.netlist_override {
            Some(nl) => nl.clone(),
            None => sta_circuits::catalog::mapped(&req.circuit, &lib)?
                .ok_or_else(|| AnalysisError::UnknownBenchmark(req.circuit.clone()))?,
        };
        (lib, nl)
    };
    obs.counter("mcmm.netlist_loads").add(1);

    // Characterize once per distinct technology (grid-keyed disk cache
    // behind it, so a warm cache makes this a load, not a simulation).
    let mut timings: Vec<(String, Arc<TimingLibrary>)> = Vec::new();
    for s in &scenarios {
        if timings.iter().any(|(name, _)| *name == s.corner.tech.name) {
            continue;
        }
        let span = root.child_with("characterize", vec![("tech", s.corner.tech.name.clone())]);
        coord_children += 1;
        let tlib = sta_charlib::characterize_cached_observed(
            &lib,
            &s.corner.tech,
            &req.char_config,
            &req.cache_dir,
            &obs,
            span.id(),
        )?;
        obs.counter("mcmm.characterizations").add(1);
        timings.push((s.corner.tech.name.clone(), Arc::new(tlib)));
    }
    let timing_for = |tech: &str| -> Arc<TimingLibrary> {
        timings
            .iter()
            .find(|(name, _)| name == tech)
            .expect("characterized above")
            .1
            .clone()
    };

    // One bitsim schedule: netlist-dependent, corner-independent.
    let schedule = req.bitsim.then(|| {
        let _span = root.child("schedule");
        coord_children += 1;
        obs.counter("mcmm.schedule_compiles").add(1);
        Arc::new(Schedule::compile(&netlist, &lib))
    });

    // One compiled kernel per distinct (technology, corner).
    let mut kernels: Vec<((String, u64, u64), Arc<CompiledCorner>)> = Vec::new();
    if req.compile_kernels {
        for s in &scenarios {
            let key = (
                s.corner.tech.name.clone(),
                s.corner.corner.temperature.to_bits(),
                s.corner.corner.vdd.to_bits(),
            );
            if kernels.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let _span = root.child_with("kernel", vec![("corner", s.corner.name.clone())]);
            coord_children += 1;
            let compiled = timing_for(&s.corner.tech.name).compile_corner(s.corner.corner);
            compiled.record_metrics(&obs);
            obs.counter("mcmm.kernel_compiles").add(1);
            kernels.push((key, Arc::new(compiled)));
        }
    }

    // Parse each distinct SDC text once, against the shared netlist.
    let mut parsed_sdc: Vec<(String, Arc<Constraints>)> = Vec::new();
    for s in &scenarios {
        if let Some(text) = &s.mode.sdc {
            if parsed_sdc.iter().any(|(t, _)| t == text) {
                continue;
            }
            let c = parse_sdc(text, &netlist)?;
            obs.counter("mcmm.sdc_parses").add(1);
            parsed_sdc.push((text.clone(), Arc::new(c)));
        }
    }

    let jobs: Vec<Job> = scenarios
        .iter()
        .enumerate()
        .map(|(index, s)| Job {
            index,
            scenario: s.clone(),
            tlib: timing_for(&s.corner.tech.name),
            kernel: kernels
                .iter()
                .find(|(k, _)| {
                    *k == (
                        s.corner.tech.name.clone(),
                        s.corner.corner.temperature.to_bits(),
                        s.corner.corner.vdd.to_bits(),
                    )
                })
                .map(|(_, k)| k.clone()),
            schedule: schedule.clone(),
            constraints: s.mode.sdc.as_ref().map(|text| {
                parsed_sdc
                    .iter()
                    .find(|(t, _)| t == text)
                    .expect("parsed above")
                    .1
                    .clone()
            }),
        })
        .collect();

    // Fan the scenario jobs over a work-stealing pool. Each job is a
    // self-contained deterministic analysis; the slot vector is indexed
    // by submission order, so collection order is irrelevant.
    let n_jobs = jobs.len();
    let workers = req.batch_threads.clamp(1, n_jobs.max(1));
    let slots: Mutex<Vec<Option<ScenarioOutcome>>> =
        Mutex::new((0..n_jobs).map(|_| None).collect());
    let root_id = root.id();
    let scenario_ord_base = coord_children;
    let run_job = |job: Job, local: &mut LocalSpans| {
        let attrs = vec![("scenario", job.scenario.name())];
        let outcome = local.time_tree(
            root_id,
            scenario_ord_base + job.index as u64,
            "scenario",
            attrs,
            |local, span_id| run_scenario(req, &lib, &netlist, &job, local, span_id),
        );
        slots.lock().expect("no poisoned batch slots")[job.index] = Some(outcome);
    };
    if workers <= 1 {
        let mut local = obs.local();
        for job in jobs {
            run_job(job, &mut local);
        }
    } else {
        let injector = Injector::new();
        for job in jobs {
            injector.push(job);
        }
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = obs.local();
                    loop {
                        match injector.steal() {
                            Steal::Success(job) => run_job(job, &mut local),
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                });
            }
        });
    }
    let outcomes: Vec<ScenarioOutcome> = slots
        .into_inner()
        .expect("no poisoned batch slots")
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect();

    let merged = {
        let _span = root.child("merge");
        MergedSlackReport::merge(&netlist, &outcomes)
    };
    Ok(BatchOutcome {
        circuit: req.circuit.clone(),
        lib,
        netlist,
        input_slew: req.input_slew,
        scenarios: outcomes,
        merged,
        elapsed_s: t0.elapsed().as_secs_f64(),
    })
}

/// One scenario job: enumeration + slack over shared read-only state.
/// This must compute exactly what an independent single-scenario
/// [`AnalysisRequest::run`] computes — the identity is pinned by
/// `tests/mcmm_identity.rs` and re-checked by `bench_mcmm`.
fn run_scenario(
    req: &AnalysisRequest,
    lib: &Library,
    netlist: &Netlist,
    job: &Job,
    local: &mut LocalSpans,
    span_id: u64,
) -> ScenarioOutcome {
    let mut cfg = EnumerationConfig::new(job.scenario.corner.corner)
        .with_threads(req.threads)
        .with_compiled_kernels(req.compile_kernels)
        .with_bitsim(req.bitsim)
        .with_learning(req.learning)
        .with_observer(req.obs.clone());
    cfg.input_slew = req.input_slew;
    if let Some(budget) = req.max_decisions {
        cfg.max_decisions = budget;
    }
    match req.n_worst {
        Some(n) => cfg = cfg.with_n_worst(n),
        None => cfg.max_paths = req.full_enum_path_cap,
    }
    let enumerator = PathEnumerator::with_prebuilt(
        netlist,
        lib,
        &job.tlib,
        cfg,
        job.kernel.clone(),
        job.schedule.clone(),
    );
    let (paths, stats) = local.time(span_id, 0, "enumerate", Vec::new(), || enumerator.run());

    let (slack, structural_worst, required, required_source) =
        local.time(span_id, 1, "slack", Vec::new(), || {
            let probe = slack_report(
                netlist,
                &job.tlib,
                job.scenario.corner.corner,
                req.input_slew,
                0.0,
            );
            let structural_worst = probe.timing.worst_arrival(netlist);
            let sdc_required = job.constraints.as_ref().and_then(|c| {
                netlist
                    .outputs()
                    .iter()
                    .filter_map(|&o| c.required_at(o))
                    .min_by(f64::total_cmp)
            });
            let (required, source) = match (job.scenario.mode.required, sdc_required) {
                (Some(r), _) => (r, RequiredSource::Explicit),
                (None, Some(r)) => (r, RequiredSource::Sdc),
                (None, None) => (structural_worst * 0.9, RequiredSource::Default),
            };
            let report = slack_report(
                netlist,
                &job.tlib,
                job.scenario.corner.corner,
                req.input_slew,
                required,
            );
            (report, structural_worst, required, source)
        });
    ScenarioOutcome {
        scenario: job.scenario.clone(),
        paths,
        stats,
        slack,
        structural_worst,
        required,
        required_source,
    }
}
