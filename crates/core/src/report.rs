//! Human-readable timing reports: per-stage path breakdowns in the style
//! designers expect from a signoff tool.

use std::fmt::Write as _;

use sta_cells::{Corner, Edge, Library};
use sta_charlib::TimingLibrary;
use sta_netlist::{GateKind, Netlist};

use crate::path::TruePath;

/// Renders a full per-stage report of one path, one launch polarity:
///
/// ```text
/// Path: a -> z (falling launch), 3 stages, 142.1 ps
///  #  cell    arc        case  fanout   delay    slew  arrival  edge
///  0  NAND2   A->Z          1    1.42    31.2    44.0     31.2  rise
///  ...
/// ```
///
/// Returns `None` if the path was not sensitizable for `launch`.
pub fn path_report(
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    path: &TruePath,
    launch: Edge,
) -> Option<String> {
    let timing = match launch {
        Edge::Rise => path.rise.as_ref()?,
        Edge::Fall => path.fall.as_ref()?,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Path: {} -> {} ({} launch), {} stages, {:.1} ps",
        nl.net_label(path.source),
        nl.net_label(path.endpoint()),
        launch,
        path.arcs.len(),
        timing.arrival,
    );
    let _ = writeln!(
        out,
        " {:>2}  {:<7} {:<6} {:>4} {:>7} {:>7} {:>8}  {:<5}  node",
        "#", "cell", "arc", "case", "delay", "arrive", "fanout", "edge"
    );
    let mut arrival = 0.0;
    let mut edge = launch;
    for (i, (arc, delay)) in path.arcs.iter().zip(&timing.gate_delays).enumerate() {
        let gate = nl.gate(arc.gate);
        let cell_id = match gate.kind() {
            GateKind::Cell(c) => c,
            GateKind::Prim(_) => return None,
        };
        let cell = lib.cell(cell_id);
        arrival += delay;
        edge = edge.through(arc.polarity);
        let fo = tlib.equivalent_fanout(nl, gate.output(), cell_id);
        let _ = writeln!(
            out,
            " {:>2}  {:<7} {:<6} {:>4} {:>7.1} {:>7.1} {:>8.2}  {:<5}  {}",
            i,
            cell.name(),
            format!("{}->Z", cell.pin_names()[arc.pin as usize]),
            arc.vector + 1,
            delay,
            arrival,
            fo,
            edge.to_string(),
            nl.net_label(gate.output()),
        );
    }
    let _ = writeln!(
        out,
        "sensitizing vector: {}",
        path.input_vector_string(nl, launch)
    );
    Some(out)
}

/// A serializable bundle of path certificates: everything an
/// enumeration-independent checker (the `sta-lint` replay oracle) needs to
/// re-certify a result set without re-running the enumerator — the netlist
/// name, the input transition time the delays were computed with, and the
/// paths themselves (each [`TruePath`] carries its witness input vector
/// and per-stage timing claims).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CertificateSet {
    /// Name of the netlist the certificates were produced from.
    pub circuit: String,
    /// Input transition time used for the delay claims, ps.
    pub input_slew: f64,
    /// The certified paths.
    pub paths: Vec<TruePath>,
}

impl CertificateSet {
    /// Bundles an enumeration result into a certificate set.
    pub fn new(nl: &Netlist, input_slew: f64, paths: Vec<TruePath>) -> Self {
        CertificateSet {
            circuit: nl.name().to_string(),
            input_slew,
            paths,
        }
    }

    /// Serializes the set as a JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("certificate sets always serialize")
    }

    /// Parses a JSON document produced by [`CertificateSet::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("malformed certificate set: {e}"))
    }
}

/// Renders an N-worst summary table over a path list.
pub fn summary_report(nl: &Netlist, paths: &[TruePath], n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>3}  {:>9}  {:>6}  path", "#", "worst ps", "gates");
    for (i, p) in paths.iter().take(n).enumerate() {
        let _ = writeln!(
            out,
            "{:>3}  {:>9.1}  {:>6}  {} -> {}",
            i + 1,
            p.worst_arrival(),
            p.arcs.len(),
            nl.net_label(p.source),
            nl.net_label(p.endpoint()),
        );
    }
    out
}

/// Convenience: enumerate-and-report in one call — characterization is the
/// caller's job, this just glues [`crate::PathEnumerator`] to the
/// renderers.
///
/// Returns (summary, full report of the single worst path).
pub fn worst_path_report(
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    corner: Corner,
    n_worst: usize,
) -> (String, Option<String>) {
    let cfg = crate::EnumerationConfig::new(corner).with_n_worst(n_worst);
    let (paths, _) = crate::PathEnumerator::new(nl, lib, tlib, cfg).run();
    let summary = summary_report(nl, &paths, n_worst);
    let detail = paths.first().and_then(|p| {
        let launch = if p.fall.is_some() {
            Edge::Fall
        } else {
            Edge::Rise
        };
        path_report(nl, lib, tlib, p, launch)
    });
    (summary, detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Technology;
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::{GateKind, Netlist};

    #[test]
    fn report_renders_all_stages() {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let inv = lib.cell_by_name("INV").unwrap().id();
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let mut nl = Netlist::new("t");
        let ins: Vec<_> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let x = nl.add_gate(GateKind::Cell(ao22), &ins, Some("x")).unwrap();
        let z = nl.add_gate(GateKind::Cell(inv), &[x], Some("z")).unwrap();
        nl.mark_output(z);
        let corner = Corner::nominal(&tech);
        let (summary, detail) = worst_path_report(&nl, &lib, &tlib, corner, 5);
        assert!(summary.contains("-> z"));
        let detail = detail.expect("worst path reported");
        assert!(detail.contains("AO22"), "{detail}");
        assert!(detail.contains("INV"), "{detail}");
        assert!(detail.contains("sensitizing vector"), "{detail}");
        // Stage count: the AO22 and the INV.
        assert_eq!(detail.lines().count(), 2 + 2 + 1, "{detail}");
    }

    #[test]
    fn certificate_set_roundtrips_through_json() {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let mut nl = Netlist::new("roundtrip");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl
            .add_gate(GateKind::Cell(nand2), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let corner = sta_cells::Corner::nominal(&tech);
        let cfg = crate::EnumerationConfig::new(corner);
        let slew = cfg.input_slew;
        let (paths, _) = crate::PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
        assert!(!paths.is_empty());
        let set = CertificateSet::new(&nl, slew, paths);
        let parsed = CertificateSet::from_json(&set.to_json()).unwrap();
        assert_eq!(parsed, set);
        assert_eq!(parsed.circuit, "roundtrip");
        assert!(CertificateSet::from_json("{nonsense").is_err());
    }
}
