//! Required-time and slack analysis on top of the structural arrival pass.
//!
//! Classic graph-based STA bookkeeping: given a clock period (or any
//! required arrival time at the outputs), compute per-net required times
//! against the *structural* worst arrivals and report slacks. This is the
//! conservative pre-filter a designer runs before asking the (exact, more
//! expensive) true-path engine for the N worst sensitizable paths.

use sta_cells::Corner;
use sta_charlib::TimingLibrary;
use sta_netlist::{NetId, Netlist};

use crate::arrival::{static_bounds, StaticTiming};

/// Per-net slack report.
#[derive(Clone, Debug, PartialEq)]
pub struct SlackReport {
    /// The analysis this report was derived from.
    pub timing: StaticTiming,
    /// Required arrival time applied at every primary output, ps.
    pub required: f64,
    /// Per-net slack (`required − arrival − remaining`), ps: how much the
    /// worst structural path through the net clears the requirement.
    pub slack: Vec<f64>,
}

impl SlackReport {
    /// Slack of one net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn of(&self, net: NetId) -> f64 {
        self.slack[net.index()]
    }

    /// The worst (most negative) slack and the net it occurs on.
    pub fn worst(&self) -> (NetId, f64) {
        let (idx, &s) = self
            .slack
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("netlists have nets");
        (NetId::from_index(idx), s)
    }

    /// Nets with negative slack, sorted most-critical first.
    pub fn violations(&self) -> Vec<(NetId, f64)> {
        let mut v: Vec<(NetId, f64)> = self
            .slack
            .iter()
            .enumerate()
            .filter(|(_, &s)| s < 0.0)
            .map(|(i, &s)| (NetId::from_index(i), s))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }

    /// Whether every net meets the requirement.
    pub fn passes(&self) -> bool {
        self.slack.iter().all(|&s| s >= 0.0)
    }
}

/// Computes a structural slack report with the requirement `required` ps
/// at every primary output.
///
/// The analysis is conservative: per-arc delays are worst-case over
/// sensitization vectors and edges, so negative slack here is a *candidate*
/// violation that the true-path engine may still discharge as false.
///
/// # Panics
///
/// Panics if the netlist is unmapped or cyclic.
pub fn slack_report(
    nl: &Netlist,
    tlib: &TimingLibrary,
    corner: Corner,
    input_slew: f64,
    required: f64,
) -> SlackReport {
    let timing = static_bounds(nl, tlib, corner, input_slew, 1.0);
    let slack = nl
        .net_ids()
        .map(|n| required - timing.arrival[n.index()] - timing.remaining[n.index()])
        .collect();
    SlackReport {
        timing,
        required,
        slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::{Library, Technology};
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::GateKind;

    fn setup() -> (Netlist, Library, TimingLibrary, Technology) {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let inv = lib.cell_by_name("INV").unwrap().id();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Cell(inv), &[a], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(nand2), &[x, b], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(inv), &[y], None).unwrap();
        nl.mark_output(z);
        (nl, lib, tlib, tech)
    }

    #[test]
    fn generous_requirement_passes_tight_fails() {
        let (nl, _lib, tlib, tech) = setup();
        let corner = Corner::nominal(&tech);
        let loose = slack_report(&nl, &tlib, corner, 60.0, 100_000.0);
        assert!(loose.passes());
        let tight = slack_report(&nl, &tlib, corner, 60.0, 1.0);
        assert!(!tight.passes());
        let (worst_net, worst_slack) = tight.worst();
        assert!(worst_slack < 0.0);
        // The worst net lies on the longest chain (starts at input a).
        assert!(tight.violations().iter().any(|(n, _)| *n == worst_net));
    }

    /// Slack along a single path is constant: arrival + remaining is the
    /// same full-path delay at every net of the chain.
    #[test]
    fn slack_is_constant_along_a_chain() {
        let (nl, _lib, tlib, tech) = setup();
        let corner = Corner::nominal(&tech);
        let report = slack_report(&nl, &tlib, corner, 60.0, 500.0);
        let a = nl.net_by_name("a").unwrap();
        let chain_total = report.timing.arrival[a.index()] + report.timing.remaining[a.index()];
        let first_slack = report.of(a);
        assert!((first_slack - (500.0 - chain_total)).abs() < 1e-9);
    }
}
