//! Backward line justification: finding a primary-input witness for a set
//! of required net values.
//!
//! Shared by the single-pass enumerator (unbounded, complete search) and
//! the commercial-style baseline (`sta-baseline`), which runs the same
//! search under a *backtrack limit* — the knob the paper sweeps in
//! Table 6.
//!
//! Branching uses **subset-minimal** candidate assignments: to justify a
//! gate-output requirement, only minimal partial assignments of the
//! still-unknown inputs are tried (e.g. `AND = 0` branches on *one* input
//! at 0, not on all 2ᵏ full patterns). This is complete — any witness
//! restricted to the gate's inputs contains a minimal satisfying subset,
//! and a superset of a failed candidate only adds constraints — and it
//! avoids the exponential thrash of full-pattern enumeration on wide
//! gates.

use std::collections::HashMap;
use std::rc::Rc;

use sta_cells::Library;
use sta_logic::{eval_expr_v9, eval_prim_v9, Dual, ImplicationEngine, Mask, V9};
use sta_netlist::{GateId, GateKind, NetId, Netlist};

use crate::bitsim::BitsimFilter;

/// One alternative side-input assignment set justifying an obligation.
type Candidate = Vec<(NetId, bool)>;
/// All subset-minimal candidate sets of one obligation.
type Candidates = Vec<Candidate>;

/// Cache key for one [`minimal_candidates`] evaluation: the gate, the
/// requirement on its output, the alive mask, and the current values of
/// its inputs. The candidate set is a pure function of these — it never
/// consults the engine's toggle deltas or any net outside the gate — so a
/// cached entry is valid across launch sources and search branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct CandKey {
    gate: u32,
    req: Dual,
    mask: Mask,
    ins: [Dual; CandKey::MAX_FANIN],
    fanin: u8,
}

impl CandKey {
    /// Gates wider than this bypass the cache (none exist in the mapped
    /// standard-cell library; primitives can be wide).
    const MAX_FANIN: usize = 8;
}

/// Memo table over [`minimal_candidates`]: branching candidates for a
/// (gate, requirement, input values) situation. The subset-minimal
/// candidate enumeration walks up to `2^k` input patterns per call; the
/// same situations recur constantly across the enumeration DFS (sibling
/// arcs re-justify the same side-input obligations), so one per-worker
/// cache removes most of that work.
#[derive(Clone, Default)]
pub struct JustifyCache {
    /// Candidate sets are shared out by `Rc` so a cache hit in the search
    /// hot loop is a reference-count bump, not a deep clone of nested
    /// vectors (the cache is per-worker and never crosses threads).
    map: HashMap<CandKey, Rc<Candidates>>,
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to candidate enumeration.
    pub misses: u64,
}

impl JustifyCache {
    /// Entry cap; the table is cleared wholesale when full.
    const CAPACITY: usize = 1 << 18;

    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all memoized entries (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Search budget and counters for one justification run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JustifyBudget {
    /// Candidate assignments tried.
    pub decisions: u64,
    /// Candidate assignments rolled back after a failed sub-search
    /// (the "backtracks" commercial tools bound).
    pub backtracks: u64,
    /// Abort threshold on `backtracks` (`u64::MAX` = unbounded).
    pub max_backtracks: u64,
    /// Abort threshold on `decisions` (`u64::MAX` = unbounded).
    ///
    /// Refuting an *unsatisfiable* requirement set with chronological
    /// backtracking can be exponential (reconvergent XOR logic — the
    /// c499 family is the classic case), so callers bound the effort per
    /// call and treat the abort as "unknown" rather than grinding.
    pub max_decisions: u64,
}

impl JustifyBudget {
    /// An unbounded budget.
    pub fn unbounded() -> Self {
        JustifyBudget {
            decisions: 0,
            backtracks: 0,
            max_backtracks: u64::MAX,
            max_decisions: u64::MAX,
        }
    }

    /// A budget with the given backtrack limit.
    pub fn with_backtrack_limit(limit: u64) -> Self {
        JustifyBudget {
            decisions: 0,
            backtracks: 0,
            max_backtracks: limit,
            max_decisions: u64::MAX,
        }
    }

    /// A budget with the given per-call decision (effort) limit.
    pub fn with_decision_limit(limit: u64) -> Self {
        JustifyBudget {
            decisions: 0,
            backtracks: 0,
            max_backtracks: u64::MAX,
            max_decisions: limit,
        }
    }
}

/// Result of a justification search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JustifyOutcome {
    /// A witness exists for the returned (non-empty) mask of launch
    /// polarities; its assignments are left on the engine trail.
    Satisfied(Mask),
    /// No witness exists for any alive polarity.
    Unsatisfiable,
    /// The backtrack limit was hit before a verdict was reached.
    BudgetExhausted,
}

/// Runs a complete backward justification of `todo` (nets carrying
/// required values) down to the primary inputs.
///
/// On [`JustifyOutcome::Satisfied`], the witness assignments remain on the
/// engine's trail — roll back to a caller-side mark to discard them. In
/// the other outcomes the engine is returned to the state it was called
/// in.
pub fn justify(
    eng: &mut ImplicationEngine<'_>,
    nl: &Netlist,
    todo: Vec<NetId>,
    mask: Mask,
    budget: &mut JustifyBudget,
) -> JustifyOutcome {
    justify_with_cache(eng, nl, todo, mask, budget, None)
}

/// [`justify`] with an optional candidate memo table (see
/// [`JustifyCache`]). The cache only memoizes pure candidate enumeration,
/// so the search outcome and the witness left on the trail are identical
/// with and without it.
pub fn justify_with_cache(
    eng: &mut ImplicationEngine<'_>,
    nl: &Netlist,
    todo: Vec<NetId>,
    mask: Mask,
    budget: &mut JustifyBudget,
    cache: Option<&mut JustifyCache>,
) -> JustifyOutcome {
    let mut todo = todo;
    let mut scratch = JustifyScratch::default();
    justify_in(
        eng,
        nl,
        &mut todo,
        mask,
        budget,
        cache,
        &mut scratch,
        None,
        None,
    )
}

/// [`justify`] with an optional bit-parallel candidate pre-filter (see
/// [`BitsimFilter`]). The filter only discards branch candidates the exact
/// engine would refute anyway, and its skipped attempts are counted into
/// the budget exactly as the engine's immediate-conflict path would have
/// counted them, so the outcome, the witness, and the budget state are
/// identical with and without it.
pub fn justify_filtered(
    eng: &mut ImplicationEngine<'_>,
    nl: &Netlist,
    todo: Vec<NetId>,
    mask: Mask,
    budget: &mut JustifyBudget,
    filter: Option<&mut BitsimFilter<'_>>,
) -> JustifyOutcome {
    let mut todo = todo;
    let mut scratch = JustifyScratch::default();
    justify_in(
        eng,
        nl,
        &mut todo,
        mask,
        budget,
        None,
        &mut scratch,
        None,
        filter,
    )
}

/// Allocation-reusing entry point: the obligation list and the search
/// scratch buffers are borrowed from the caller, so a tight caller (the
/// enumeration hot loop) keeps one set of buffers alive across millions of
/// calls. `todo` is left in an unspecified state.
///
/// `effort_hist`, when present, receives this call's decision count — a
/// per-call effort distribution for the observability layer. The tap is
/// write-only: it cannot influence the outcome or the witness.
#[allow(clippy::too_many_arguments)]
pub(crate) fn justify_in(
    eng: &mut ImplicationEngine<'_>,
    nl: &Netlist,
    todo: &mut Vec<NetId>,
    mask: Mask,
    budget: &mut JustifyBudget,
    mut cache: Option<&mut JustifyCache>,
    scratch: &mut JustifyScratch,
    effort_hist: Option<&sta_obs::Histogram>,
    mut filter: Option<&mut BitsimFilter<'_>>,
) -> JustifyOutcome {
    let decisions_at_entry = budget.decisions;
    let mark = eng.mark();
    let lib = eng.library();
    let ctx = Ctx { nl, lib };
    let out = justify_rec(
        eng,
        &ctx,
        todo,
        mask,
        budget,
        &mut cache,
        scratch,
        &mut filter,
    );
    if !matches!(out, JustifyOutcome::Satisfied(_)) {
        eng.rollback(mark);
    }
    if let Some(h) = effort_hist {
        h.observe((budget.decisions - decisions_at_entry) as f64);
    }
    out
}

/// Nogood verification oracle (see [`crate::learn`]): a complete bounded
/// check that the required values on `todo` admit no witness in any
/// alive polarity. Returns `true` only on a definitive
/// [`JustifyOutcome::Unsatisfiable`] — a budget abort is *not* a
/// refutation. The engine is restored to its entry state either way
/// (including after `Satisfied`, whose witness a verifier has no use
/// for).
pub(crate) fn proves_unsat(
    eng: &mut ImplicationEngine<'_>,
    nl: &Netlist,
    todo: &mut Vec<NetId>,
    mask: Mask,
    budget: &mut JustifyBudget,
    scratch: &mut JustifyScratch,
) -> bool {
    let mark = eng.mark();
    let out = justify_in(eng, nl, todo, mask, budget, None, scratch, None, None);
    if matches!(out, JustifyOutcome::Satisfied(_)) {
        eng.rollback(mark);
    }
    matches!(out, JustifyOutcome::Unsatisfiable)
}

/// Reusable buffers of the justification search (one set per worker).
/// Contents are transient — every use clears before filling.
#[derive(Clone, Debug, Default)]
pub(crate) struct JustifyScratch {
    /// Unsatisfied obligations of the current fixpoint iteration.
    pending: Vec<(NetId, GateId)>,
    /// Dedup set for the `pending` sweep.
    seen: Vec<NetId>,
    /// Free (still-unknown) inputs of the gate under consideration.
    free: Vec<NetId>,
}

struct Ctx<'a> {
    nl: &'a Netlist,
    lib: &'a Library,
}

/// [`minimal_candidates`] through the optional memo table.
fn cached_candidates(
    eng: &ImplicationEngine<'_>,
    ctx: &Ctx<'_>,
    gate: GateId,
    free: &[NetId],
    mask: Mask,
    cache: &mut Option<&mut JustifyCache>,
) -> Rc<Candidates> {
    let g = ctx.nl.gate(gate);
    let key = match cache {
        Some(_) if g.fanin() <= CandKey::MAX_FANIN => {
            let mut ins = [Dual::XX; CandKey::MAX_FANIN];
            for (slot, n) in ins.iter_mut().zip(g.inputs()) {
                *slot = eng.value(*n);
            }
            Some(CandKey {
                gate: gate.index() as u32,
                req: eng.value(g.output()),
                mask,
                ins,
                fanin: g.fanin() as u8,
            })
        }
        _ => None,
    };
    if let (Some(c), Some(key)) = (cache.as_deref_mut(), key) {
        if let Some(hit) = c.map.get(&key) {
            c.hits += 1;
            return Rc::clone(hit);
        }
        c.misses += 1;
        let cands = Rc::new(minimal_candidates(eng, ctx, gate, free, mask));
        if c.map.len() >= JustifyCache::CAPACITY {
            c.map.clear();
        }
        c.map.insert(key, Rc::clone(&cands));
        return cands;
    }
    Rc::new(minimal_candidates(eng, ctx, gate, free, mask))
}

#[allow(clippy::too_many_arguments)]
fn justify_rec(
    eng: &mut ImplicationEngine<'_>,
    ctx: &Ctx<'_>,
    todo: &mut Vec<NetId>,
    mask: Mask,
    budget: &mut JustifyBudget,
    cache: &mut Option<&mut JustifyCache>,
    scratch: &mut JustifyScratch,
    filter: &mut Option<&mut BitsimFilter<'_>>,
) -> JustifyOutcome {
    let nl = ctx.nl;
    let mut alive = mask;
    // Unit propagation to fixpoint: obligations with exactly one minimal
    // candidate are applied without branching; obligations with none are
    // contradictions. This (plus the toggle deltas in the engine) is what
    // tames the interlocking parity constraints of XOR-rich circuits.
    loop {
        // Collect the currently unsatisfied obligations. The pending/seen
        // buffers are shared down the recursion — only this iteration's
        // contents matter, and the recursive calls below happen after the
        // last read.
        scratch.pending.clear();
        scratch.seen.clear();
        for idx in (0..todo.len()).rev() {
            let net = todo[idx];
            if scratch.seen.contains(&net) || nl.net(net).is_input() {
                continue;
            }
            scratch.seen.push(net);
            let gate = nl.net(net).driver().expect("validated netlist");
            let computed = eng.computed_output(gate, alive);
            let req = eng.value(net);
            let needs_r = alive.r && !refines(req.r, computed.r);
            let needs_f = alive.f && !refines(req.f, computed.f);
            if needs_r || needs_f {
                scratch.pending.push((net, gate));
            }
        }
        if scratch.pending.is_empty() {
            return JustifyOutcome::Satisfied(alive);
        }
        // Candidate counts; apply forced ones immediately, branch on the
        // most constrained otherwise (MRV).
        let mut branch: Option<(GateId, Rc<Candidates>)> = None;
        let mut forced: Option<(GateId, Rc<Candidates>)> = None;
        for i in 0..scratch.pending.len() {
            let (_net, gate) = scratch.pending[i];
            free_inputs_into(eng, nl, gate, alive, &mut scratch.free);
            if scratch.free.is_empty() {
                return JustifyOutcome::Unsatisfiable;
            }
            let cands = cached_candidates(eng, ctx, gate, &scratch.free, alive, cache);
            match cands.len() {
                0 => return JustifyOutcome::Unsatisfiable,
                1 => {
                    forced = Some((gate, cands));
                    break;
                }
                _ => {
                    if branch.as_ref().is_none_or(|(_, b)| cands.len() < b.len()) {
                        branch = Some((gate, cands));
                    }
                }
            }
        }
        if let Some((gate, cands)) = forced {
            let cand: &Candidate = &cands[0];
            budget.decisions += 1;
            if budget.decisions > budget.max_decisions {
                return JustifyOutcome::BudgetExhausted;
            }
            for &(fnet, value) in cand {
                let conflicts = eng.assign(fnet, Dual::stable(value), alive);
                alive = alive.minus(conflicts);
                if !alive.any() {
                    return JustifyOutcome::Unsatisfiable;
                }
            }
            todo.push(nl.gate(gate).output());
            todo.extend(cand.iter().map(|&(n, _)| n));
            continue;
        }
        let (gate, cands) = branch.expect("pending implies a branch point");
        let out_net = nl.gate(gate).output();
        // Batch-refute candidates through the bit-parallel forward
        // simulator before touching the exact engine. `refuted` lanes are
        // candidates the engine is certain to reject in every alive
        // polarity (see `crate::bitsim` for the soundness argument); for
        // those the loop below replays the engine's immediate-conflict
        // counter sequence — decision, then backtrack — without the
        // assignment, so budgets trip at exactly the same point either
        // way.
        let refuted: u64 = match filter.as_deref_mut() {
            Some(f) => f.refute_candidates(eng, &cands, alive),
            None => 0,
        };
        // Each candidate extends the shared obligation list in place;
        // truncating back to `saved` on failure restores exactly the state
        // the next candidate must see (the recursion only ever appends).
        let saved = todo.len();
        for (ci, cand) in cands.iter().enumerate() {
            budget.decisions += 1;
            if budget.decisions > budget.max_decisions {
                return JustifyOutcome::BudgetExhausted;
            }
            if ci < 64 && refuted & (1u64 << ci) != 0 {
                budget.backtracks += 1;
                if budget.backtracks > budget.max_backtracks {
                    return JustifyOutcome::BudgetExhausted;
                }
                continue;
            }
            let mark = eng.mark();
            let mut alive2 = alive;
            for &(fnet, value) in cand {
                let conflicts = eng.assign(fnet, Dual::stable(value), alive2);
                alive2 = alive2.minus(conflicts);
                if !alive2.any() {
                    break;
                }
            }
            if alive2.any() {
                let computed = eng.computed_output(gate, alive2);
                let req_now = eng.value(out_net);
                let ok_r = !alive2.r || refines(req_now.r, computed.r);
                let ok_f = !alive2.f || refines(req_now.f, computed.f);
                if ok_r && ok_f {
                    todo.push(out_net);
                    todo.extend(cand.iter().map(|&(n, _)| n));
                    match justify_rec(eng, ctx, todo, alive2, budget, cache, scratch, filter) {
                        JustifyOutcome::Satisfied(m) if m.any() => {
                            return JustifyOutcome::Satisfied(m)
                        }
                        JustifyOutcome::BudgetExhausted => {
                            eng.rollback(mark);
                            return JustifyOutcome::BudgetExhausted;
                        }
                        _ => {}
                    }
                    todo.truncate(saved);
                }
            }
            eng.rollback(mark);
            budget.backtracks += 1;
            if budget.backtracks > budget.max_backtracks {
                return JustifyOutcome::BudgetExhausted;
            }
        }
        return JustifyOutcome::Unsatisfiable;
    }
}

/// The still-unknown inputs of a gate (deduplicated, pin order), written
/// into the caller's buffer.
fn free_inputs_into(
    eng: &ImplicationEngine<'_>,
    nl: &Netlist,
    gate: GateId,
    mask: Mask,
    out: &mut Vec<NetId>,
) {
    out.clear();
    out.extend(nl.gate(gate).inputs().iter().copied().filter(|n| {
        let d = eng.value(*n);
        (mask.r && !d.r.is_fully_defined()) || (mask.f && !d.f.is_fully_defined())
    }));
    out.dedup();
}

/// Enumerates the subset-minimal stable assignments of `free` inputs that
/// make the gate's computed output refine the current requirement, given
/// the current values of the remaining inputs.
fn minimal_candidates(
    eng: &ImplicationEngine<'_>,
    ctx: &Ctx<'_>,
    gate: GateId,
    free: &[NetId],
    mask: Mask,
) -> Vec<Vec<(NetId, bool)>> {
    let nl = ctx.nl;
    let g = nl.gate(gate);
    let req = eng.value(g.output());
    let current: Vec<Dual> = g.inputs().iter().map(|n| eng.value(*n)).collect();
    // Map free-net → positions in the input list (a net can feed several
    // pins).
    let positions: Vec<Vec<usize>> = free
        .iter()
        .map(|fnet| {
            g.inputs()
                .iter()
                .enumerate()
                .filter(|(_, n)| **n == *fnet)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let eval_with = |cand: &[(usize, bool)]| -> Dual {
        // cand holds (free index, value) pairs.
        let mut ins = current.clone();
        for &(fi, value) in cand {
            for &pos in &positions[fi] {
                // Merge the stable value into the current (possibly
                // semi-undetermined) one; incompatible merges mean the
                // candidate is locally impossible.
                ins[pos] = Dual {
                    r: ins[pos].r.meet(V9::stable(value)).unwrap_or(ins[pos].r),
                    f: ins[pos].f.meet(V9::stable(value)).unwrap_or(ins[pos].f),
                };
            }
        }
        let per = |pick: fn(&Dual) -> V9| -> V9 {
            let vals: Vec<V9> = ins.iter().map(pick).collect();
            match g.kind() {
                GateKind::Prim(op) => eval_prim_v9(op, &vals),
                GateKind::Cell(c) => eval_expr_v9(ctx.lib.cell(c).expr(), &vals),
            }
        };
        Dual {
            r: per(|d| d.r),
            f: per(|d| d.f),
        }
    };
    let locally_ok = |cand: &[(usize, bool)]| -> bool {
        // The candidate must be mergeable into the current input values.
        for &(fi, value) in cand {
            for &pos in &positions[fi] {
                let d = current[pos];
                let sv = V9::stable(value);
                if (mask.r && d.r.meet(sv).is_none()) || (mask.f && d.f.meet(sv).is_none()) {
                    return false;
                }
            }
        }
        let out = eval_with(cand);
        (!mask.r || refines(req.r, out.r)) && (!mask.f || refines(req.f, out.f))
    };
    let k = free.len();
    assert!(k <= 16, "cell pin counts are bounded");
    // Enumerate subsets by ascending size so minimality is by
    // construction: a candidate whose support+values contain an accepted
    // candidate is skipped.
    let mut subsets: Vec<u32> = (0..(1u32 << k)).collect();
    subsets.sort_by_key(|m| m.count_ones());
    let mut minimal: Vec<Vec<(usize, bool)>> = Vec::new();
    for subset in subsets {
        let size = subset.count_ones() as usize;
        let members: Vec<usize> = (0..k).filter(|i| subset & (1 << i) != 0).collect();
        for pattern in 0..(1u32 << size) {
            let cand: Vec<(usize, bool)> = members
                .iter()
                .enumerate()
                .map(|(j, &fi)| (fi, pattern & (1 << j) != 0))
                .collect();
            let subsumed = minimal.iter().any(|m| {
                m.iter()
                    .all(|&(mi, mv)| cand.iter().any(|&(ci, cv)| ci == mi && cv == mv))
            });
            if subsumed {
                continue;
            }
            if locally_ok(&cand) {
                minimal.push(cand);
            }
        }
    }
    minimal
        .into_iter()
        .map(|cand| {
            cand.into_iter()
                .map(|(fi, v)| (free[fi], v))
                .collect::<Vec<(NetId, bool)>>()
        })
        .collect()
}

/// `specific` satisfies the requirement `general`: consistent and at least
/// as defined.
pub(crate) fn refines(general: V9, specific: V9) -> bool {
    general.meet(specific) == Some(specific)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Library;
    use sta_netlist::GateKind;

    /// Justifying an AND2 output of 1 forces both inputs to 1.
    #[test]
    fn and_output_one_forces_inputs() {
        let lib = Library::standard();
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_gate(GateKind::Cell(and2), &[a, b], None).unwrap();
        nl.mark_output(z);
        let mut eng = ImplicationEngine::new(&nl, &lib);
        eng.assign(z, Dual::stable(true), Mask::BOTH);
        let mut budget = JustifyBudget::unbounded();
        let out = justify(&mut eng, &nl, vec![z], Mask::BOTH, &mut budget);
        assert_eq!(out, JustifyOutcome::Satisfied(Mask::BOTH));
        assert_eq!(eng.value(a), Dual::stable(true));
        assert_eq!(eng.value(b), Dual::stable(true));
    }

    /// Justifying an AND2 output of 0 assigns *one* input (minimal
    /// candidate), leaving the other as a don't-care.
    #[test]
    fn and_output_zero_is_minimal() {
        let lib = Library::standard();
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_gate(GateKind::Cell(and2), &[a, b], None).unwrap();
        nl.mark_output(z);
        let mut eng = ImplicationEngine::new(&nl, &lib);
        eng.assign(z, Dual::stable(false), Mask::BOTH);
        let mut budget = JustifyBudget::unbounded();
        let out = justify(&mut eng, &nl, vec![z], Mask::BOTH, &mut budget);
        assert!(matches!(out, JustifyOutcome::Satisfied(_)));
        // Exactly one of the inputs is forced to 0, the other stays X.
        let defined = [a, b]
            .iter()
            .filter(|&&n| eng.value(n).r.is_fully_defined())
            .count();
        assert_eq!(defined, 1, "minimal witness leaves a don't-care");
    }

    /// An unsatisfiable requirement (AND(a, !a) = 1) is recognized.
    #[test]
    fn contradiction_is_unsatisfiable() {
        let lib = Library::standard();
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let inv = lib.cell_by_name("INV").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let na = nl.add_gate(GateKind::Cell(inv), &[a], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(and2), &[a, na], None).unwrap();
        nl.mark_output(z);
        let mut eng = ImplicationEngine::new(&nl, &lib);
        let pre = eng.mark();
        eng.assign(z, Dual::stable(true), Mask::BOTH);
        let mut budget = JustifyBudget::unbounded();
        let out = justify(&mut eng, &nl, vec![z], Mask::BOTH, &mut budget);
        assert_eq!(out, JustifyOutcome::Unsatisfiable);
        // Engine restored to the pre-justification state (requirement kept).
        assert!(eng.mark() >= pre);
    }

    /// Wide-gate justification stays polynomial: a 27-input OR forced to 0
    /// has exactly one witness (all inputs 0) and must resolve without
    /// combinatorial search.
    #[test]
    fn wide_or_to_zero_is_cheap() {
        let lib = Library::standard();
        let or2 = lib.cell_by_name("OR2").unwrap().id();
        let mut nl = Netlist::new("t");
        let mut acc = nl.add_input("i0");
        for i in 1..27 {
            let x = nl.add_input(format!("i{i}"));
            acc = nl.add_gate(GateKind::Cell(or2), &[acc, x], None).unwrap();
        }
        nl.mark_output(acc);
        let mut eng = ImplicationEngine::new(&nl, &lib);
        eng.assign(acc, Dual::stable(false), Mask::BOTH);
        let mut budget = JustifyBudget::unbounded();
        let out = justify(&mut eng, &nl, vec![acc], Mask::BOTH, &mut budget);
        assert!(matches!(out, JustifyOutcome::Satisfied(_)));
        assert!(
            budget.decisions < 200,
            "expected linear work, took {} decisions",
            budget.decisions
        );
    }

    /// The candidate memo table changes neither the outcome nor the
    /// witness, and repeated situations hit the cache.
    #[test]
    fn cache_is_transparent() {
        let lib = Library::standard();
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_gate(GateKind::Cell(and2), &[a, b], None).unwrap();
        nl.mark_output(z);
        let mut cache = JustifyCache::new();
        for round in 0..2 {
            let mut eng = ImplicationEngine::new(&nl, &lib);
            eng.assign(z, Dual::stable(true), Mask::BOTH);
            let mut budget = JustifyBudget::unbounded();
            let out = justify_with_cache(
                &mut eng,
                &nl,
                vec![z],
                Mask::BOTH,
                &mut budget,
                Some(&mut cache),
            );
            assert_eq!(out, JustifyOutcome::Satisfied(Mask::BOTH));
            assert_eq!(eng.value(a), Dual::stable(true));
            assert_eq!(eng.value(b), Dual::stable(true));
            if round == 1 {
                assert!(cache.hits >= 1, "second round should hit the memo table");
            }
        }
    }

    /// A zero backtrack limit makes a search that needs genuine branching
    /// give up. Contradictory parity requirements (`p ⊕ q = 1` and
    /// `p ⊙ q = 1`) have no forced assignments — the solver must branch,
    /// and every branch conflicts.
    #[test]
    fn backtrack_limit_aborts() {
        let lib = Library::standard();
        let xor2 = lib.cell_by_name("XOR2").unwrap().id();
        let xnor2 = lib.cell_by_name("XNOR2").unwrap().id();
        let mut nl = Netlist::new("t");
        let p = nl.add_input("p");
        let q = nl.add_input("q");
        let x = nl.add_gate(GateKind::Cell(xor2), &[p, q], None).unwrap();
        let w = nl.add_gate(GateKind::Cell(xnor2), &[p, q], None).unwrap();
        nl.mark_output(x);
        nl.mark_output(w);
        let mut eng = ImplicationEngine::new(&nl, &lib);
        eng.assign(x, Dual::stable(true), Mask::BOTH);
        eng.assign(w, Dual::stable(true), Mask::BOTH);
        let mut strict = JustifyBudget::with_backtrack_limit(0);
        let out = justify(&mut eng, &nl, vec![x, w], Mask::BOTH, &mut strict);
        assert_eq!(out, JustifyOutcome::BudgetExhausted);
        let mut free = JustifyBudget::unbounded();
        let out = justify(&mut eng, &nl, vec![x, w], Mask::BOTH, &mut free);
        assert_eq!(out, JustifyOutcome::Unsatisfiable);
        assert!(free.backtracks >= 1, "branching was required");
    }
}
