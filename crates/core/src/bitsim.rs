//! Bit-parallel batch pre-filter for the justification search.
//!
//! At every branch point the justification search tries a list of
//! candidate side-input assignments one at a time through the exact
//! [`ImplicationEngine`] — assign, propagate, detect conflict, roll back.
//! The [`BitsimFilter`] runs all of them (up to 64) through one compiled
//! forward simulation first and discards the candidates whose lanes are
//! provably contradictory, so the exact engine only sees the survivors.
//!
//! # Soundness (why filtering can never drop a true path)
//!
//! The filter is **refutation-only**. A lane packs one candidate: the
//! engine's current primary-input values as seeds, every value on the
//! engine's trail as a broadcast *requirement*, and the candidate's own
//! assignments as per-lane requirements. Three-valued forward simulation
//! computes, for every net, a value that **abstracts** (is at most as
//! defined as) any value the exact engine can reach after assigning that
//! candidate: seeds equal the engine's pre-candidate values, the Kleene
//! connectives are monotone, and the engine only ever refines values by
//! meets. Every requirement the simulation meets in is one the engine's
//! post-assignment state satisfies, so if the engine could accept the
//! candidate in some polarity, every meet along that lane is witnessed
//! non-empty by the engine's own values — the lane cannot die. By
//! contraposition, a lane dead in a polarity means the exact engine would
//! conflict in that polarity; a candidate dead in *every* alive polarity
//! would be rejected by the engine with certainty. Only those are
//! filtered. The engine is strictly stronger than the simulation (toggle
//! deltas, iterated backward implications), so surviving lanes still go
//! through the exact engine — the filter changes which candidates are
//! *attempted*, never which ones *succeed*.
//!
//! Candidates refuted in only a subset of the alive polarities are **not**
//! filtered: the engine's partial-conflict handling (shrinking the alive
//! mask and recursing) must observe them exactly as before.
//!
//! Because any subset of the refutable candidates may be filtered without
//! changing a single verdict (the caller emulates the engine's decision
//! and backtrack bookkeeping for skipped candidates), the filter is free
//! to *throttle itself*: empty probes back off exponentially up to
//! [`MAX_BACKOFF`] branch points, refutation hits reset the backoff, so
//! the screen concentrates its word passes where refutations cluster.
//! Callers clear the throttle at every root-task boundary
//! ([`BitsimFilter::reset_throttle`]) so the probe pattern is a function
//! of the task alone — the `bitsim.*` counters stay byte-identical no
//! matter how root tasks are sharded across worker threads.

use sta_logic::{BitSim, Dual, ImplicationEngine, Mask, Schedule, TriVal};
use sta_netlist::NetId;

/// Minimum candidates at a branch point before the batch filter runs; a
/// word costs one pass over the whole compiled program, which only pays
/// for itself across several lanes. Thresholds never affect correctness —
/// any subset of the refutable candidates may be filtered.
const MIN_LANES: usize = 2;

/// Upper bound of the exponential probing backoff. Refutable branch
/// points cluster (a hard obligation region produces runs of them);
/// where probes keep coming back empty the filter backs off to one
/// probe per `MAX_BACKOFF` branch points, so barren stretches of the
/// search pay almost nothing for the screen. Like `MIN_LANES`, pure
/// policy: skipping an invocation never changes any verdict.
const MAX_BACKOFF: u32 = 64;

/// A reusable 64-lane refutation filter over one compiled [`Schedule`].
///
/// The counters feed the `bitsim.*` observability metrics; they are plain
/// fields (not atomics) because each filter is confined to one worker.
#[derive(Debug)]
pub struct BitsimFilter<'a> {
    sched: &'a Schedule,
    sim: BitSim,
    /// Invocations left to skip before the next probe.
    skip: u32,
    /// Current backoff length (0 = probe every branch point).
    backoff: u32,
    /// 64-lane program executions (one per polarity/timeframe plane).
    pub words: u64,
    /// Lane kills summed over polarity planes (a candidate dead in both
    /// polarities counts twice).
    pub lanes_filtered: u64,
    /// Candidates refuted in every alive polarity — exact-engine
    /// assignment calls that were skipped entirely.
    pub exact_calls_saved: u64,
}

impl<'a> BitsimFilter<'a> {
    /// A filter over `sched`, which must be compiled from the same netlist
    /// the engine operates on.
    pub fn new(sched: &'a Schedule) -> Self {
        BitsimFilter {
            sched,
            sim: BitSim::new(sched),
            skip: 0,
            backoff: 0,
            words: 0,
            lanes_filtered: 0,
            exact_calls_saved: 0,
        }
    }

    /// Clears the adaptive probing backoff. Called at every root-task
    /// boundary so the throttle state never leaks across tasks — which
    /// would make the `words` counter depend on how tasks are sharded
    /// across workers. Pure policy; verdicts are unaffected.
    pub fn reset_throttle(&mut self) {
        self.skip = 0;
        self.backoff = 0;
    }

    /// Returns the lane mask of candidates that provably conflict in
    /// **every** polarity of `alive` given the engine's current state.
    /// Candidates beyond lane 63 are never refuted.
    pub fn refute_candidates(
        &mut self,
        eng: &ImplicationEngine<'_>,
        cands: &[Vec<(NetId, bool)>],
        alive: Mask,
    ) -> u64 {
        if cands.len() < MIN_LANES || !alive.any() {
            return 0;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return 0;
        }
        let n = cands.len().min(64);
        let lanes: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
        let mut refuted = lanes;
        for pol_r in [true, false] {
            let pol_alive = if pol_r { alive.r } else { alive.f };
            if !pol_alive {
                continue;
            }
            if refuted == 0 {
                break;
            }
            // A lane is dead in this polarity if either timeframe plane
            // conflicts.
            let mut dead = 0u64;
            for init in [true, false] {
                dead |= self.run_plane(eng, cands, n, lanes, pol_r, init);
                self.words += 1;
            }
            self.lanes_filtered += u64::from((dead & lanes).count_ones());
            refuted &= dead;
        }
        refuted &= lanes;
        self.exact_calls_saved += u64::from(refuted.count_ones());
        // Adaptive probing: a hit keeps the filter hot, an empty probe
        // doubles the stretch of branch points left unscreened.
        if refuted != 0 {
            self.backoff = 0;
        } else {
            self.backoff = (self.backoff.max(1) * 2).min(MAX_BACKOFF);
            self.skip = self.backoff;
        }
        refuted
    }

    /// One three-valued plane: polarity `pol_r` (rising/falling launch),
    /// timeframe `init` (initial/final). Returns the dead-lane mask.
    fn run_plane(
        &mut self,
        eng: &ImplicationEngine<'_>,
        cands: &[Vec<(NetId, bool)>],
        n: usize,
        lanes: u64,
        pol_r: bool,
        init: bool,
    ) -> u64 {
        self.sim.begin(self.sched);
        for &src in self.sched.sources() {
            let v = component(eng.value(src), pol_r, init);
            if v != TriVal::X {
                self.sim.seed(src, v);
            }
        }
        // Every known engine value — assigned or implied — becomes a
        // broadcast requirement: the exact engine's accepted states refine
        // all of them, so they are safe to impose on every lane.
        for net in eng.assigned_nets() {
            let v = component(eng.value(net), pol_r, init);
            if v != TriVal::X {
                self.sim.require(net, !0u64, v);
            }
        }
        for (i, cand) in cands.iter().take(n).enumerate() {
            for &(net, val) in cand {
                self.sim.require(net, 1u64 << i, TriVal::from_bool(val));
            }
        }
        self.sim.run(self.sched, lanes)
    }
}

/// One three-valued component of a dual nine-valued value.
fn component(d: Dual, pol_r: bool, init: bool) -> TriVal {
    let v = if pol_r { d.r } else { d.f };
    if init {
        v.init()
    } else {
        v.fin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Library;
    use sta_netlist::{GateKind, Netlist};

    /// AND(a, b) with a = 0 already propagated: a candidate requiring the
    /// output at 1 is refuted, a candidate leaving it at 0 is not.
    #[test]
    fn refutes_exactly_the_contradicted_candidates() {
        let lib = Library::standard();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let z = nl
            .add_gate(GateKind::Cell(and2), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let sched = Schedule::compile(&nl, &lib);
        let mut filter = BitsimFilter::new(&sched);
        let mut eng = ImplicationEngine::new(&nl, &lib);
        // Known state: a = 0, and the output is required stable 0 (which
        // a = 0 already satisfies — no conflict yet).
        assert_eq!(eng.assign(a, Dual::stable(false), Mask::BOTH), Mask::NONE);
        // Candidate 0 wants z = 1 (contradicts a = 0 through the AND);
        // candidate 1 wants b = 1 (consistent: z stays 0).
        let cands = vec![vec![(z, true)], vec![(b, true)]];
        let refuted = filter.refute_candidates(&eng, &cands, Mask::BOTH);
        assert_eq!(refuted, 0b01);
        assert_eq!(filter.exact_calls_saved, 1);
        assert!(filter.words >= 2);
    }

    /// With nothing assigned, forward simulation knows nothing — no
    /// candidate can be refuted (the all-X state is consistent with
    /// anything).
    #[test]
    fn refutes_nothing_on_an_unconstrained_engine() {
        let lib = Library::standard();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let or2 = lib.cell_by_name("OR2").unwrap().id();
        let z = nl
            .add_gate(GateKind::Cell(or2), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let sched = Schedule::compile(&nl, &lib);
        let mut filter = BitsimFilter::new(&sched);
        let eng = ImplicationEngine::new(&nl, &lib);
        let cands = vec![vec![(a, true)], vec![(a, false)], vec![(b, true)]];
        assert_eq!(filter.refute_candidates(&eng, &cands, Mask::BOTH), 0);
    }

    /// A candidate dead in only one polarity survives the filter (the
    /// exact engine must handle partial-polarity conflicts itself).
    #[test]
    fn partial_polarity_refutation_is_not_filtered() {
        let lib = Library::standard();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let z = nl
            .add_gate(GateKind::Cell(and2), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let sched = Schedule::compile(&nl, &lib);
        let mut filter = BitsimFilter::new(&sched);
        let mut eng = ImplicationEngine::new(&nl, &lib);
        // a = 0 in the rising analysis only; unknown under falling. z is
        // then stable 0 under rising, unknown under falling.
        let asym = Dual {
            r: sta_logic::V9::S0,
            f: sta_logic::V9::XX,
        };
        assert_eq!(eng.assign(a, asym, Mask::BOTH), Mask::NONE);
        // z = 1 conflicts under rising launch only; the falling analysis
        // is satisfiable — the candidate must be kept.
        let cands = vec![vec![(z, true)], vec![(z, false)]];
        let refuted = filter.refute_candidates(&eng, &cands, Mask::BOTH);
        assert_eq!(refuted, 0, "single-polarity conflicts must survive");
        assert_eq!(filter.lanes_filtered, 1, "one lane died, rising only");
    }
}
