//! The paper's primary contribution: a single-pass, sensitization-vector-
//! aware static timing analyzer.
//!
//! Unlike the traditional two-step flow (structural path list first,
//! post-hoc sensitization second — see the `sta-baseline` crate), this
//! engine sensitizes paths *while* traversing the circuit:
//!
//! * every sensitization vector of every complex gate spawns its own
//!   search branch, so paths that share a gate sequence but differ in the
//!   vector are kept distinct and get their own (different!) delay;
//! * forward implications over the dual-value logic system (`sta-logic`)
//!   kill inconsistent branches early, and complete backward justification
//!   guarantees every emitted path carries a concrete witness input
//!   vector;
//! * rising and falling launches are traced simultaneously, so a path is
//!   walked once for both polarities;
//! * the vector-specific polynomial delay model (`sta-charlib`) is
//!   evaluated during the traversal with slew propagation — emitting the
//!   N slowest *true* paths needs no second pass.
//!
//! # Example
//!
//! ```
//! use sta_cells::{Corner, Library, Technology};
//! use sta_charlib::{characterize, CharConfig};
//! use sta_core::{EnumerationConfig, PathEnumerator};
//! use sta_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Library::standard();
//! let tech = Technology::n90();
//! let tlib = characterize(&lib, &tech, &CharConfig::fast())?;
//!
//! // z = NAND2(a, b)
//! let nand2 = lib.cell_by_name("NAND2").expect("standard cell").id();
//! let mut nl = Netlist::new("tiny");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let z = nl.add_gate(GateKind::Cell(nand2), &[a, b], Some("z"))?;
//! nl.mark_output(z);
//!
//! let cfg = EnumerationConfig::new(Corner::nominal(&tech));
//! let (paths, stats) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
//! assert_eq!(paths.len(), 2); // one true path per input
//! assert!(!stats.truncated);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod arrival;
pub mod bitsim;
pub mod delaycalc;
pub mod eco;
pub mod enumerate;
pub mod justify;
pub mod learn;
pub mod mcmm;
mod parallel;
pub mod path;
pub mod report;
pub mod scenario;
pub mod sdc;
pub mod sdf;
pub mod slack;

pub use analysis::{
    AnalysisContext, AnalysisError, AnalysisOutcome, AnalysisRequest, EnumerationRun,
    RequiredSource, SlackOutcome,
};
pub use arrival::{
    arc_bounds, arc_bounds_compiled, arc_delay_bound, arc_intervals, arc_intervals_compiled,
    record_bounds_metrics, static_bounds, static_bounds_compiled, tightened_remaining, ArcBounds,
    ArcInterval, ArcIntervals, StaticTiming, ARC_SWEEP_MARGIN,
};
pub use bitsim::BitsimFilter;
pub use delaycalc::{path_delay, path_delay_compiled, DelayCalcError, PathDelayBreakdown};
pub use eco::{
    corrupt_source_cache, dirty_sources, fanin_cone, fanout_cone, CacheCorruption, SourceCache,
};
pub use enumerate::{EnumerationConfig, EnumerationStats, PathEnumerator};
pub use justify::{
    justify, justify_filtered, justify_with_cache, JustifyBudget, JustifyCache, JustifyOutcome,
};
pub use learn::{Nogood, NogoodKey, NogoodStore, NogoodView};
pub use mcmm::{BatchOutcome, MergedEndpoint, MergedSlackReport, ScenarioOutcome};
pub use path::{group_by_structure, LaunchTiming, PathArc, PathGroup, PiValue, TruePath};
pub use report::{path_report, summary_report, worst_path_report, CertificateSet};
pub use scenario::{CornerDef, Mode, Scenario, ScenarioError};
pub use sdc::{parse_sdc, Constraints, SdcError};
pub use sdf::{write_sdf, SdfVectorPolicy};
pub use slack::{slack_report, SlackReport};
