//! Stand-alone path delay calculation with the polynomial model.
//!
//! The enumerator accumulates delay incrementally during traversal; this
//! module recomputes a [`TruePath`]'s delay from scratch — used by the
//! repro harness (Tables 7–9 compare per-gate model delays against golden
//! electrical simulation) and as an independent cross-check of the
//! enumerator's bookkeeping.

use sta_cells::{Corner, Edge};
use sta_charlib::TimingLibrary;
use sta_netlist::{GateKind, Netlist};

use crate::path::TruePath;

/// Per-gate delay breakdown of one launch polarity of a path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathDelayBreakdown {
    /// The launch edge this breakdown describes.
    pub launch: Edge,
    /// (delay, output slew) per traversed gate, in path order, ps.
    pub stages: Vec<(f64, f64)>,
    /// Total path delay, ps.
    pub total: f64,
}

/// Recomputes the polynomial-model delay of `path` for the given launch
/// edge.
///
/// # Panics
///
/// Panics if the path references unmapped gates.
pub fn path_delay(
    nl: &Netlist,
    tlib: &TimingLibrary,
    path: &TruePath,
    launch: Edge,
    input_slew: f64,
    corner: Corner,
) -> PathDelayBreakdown {
    let mut stages = Vec::with_capacity(path.arcs.len());
    let mut edge = launch;
    let mut slew = input_slew;
    let mut total = 0.0;
    for arc in &path.arcs {
        let gate = nl.gate(arc.gate);
        let cell = match gate.kind() {
            GateKind::Cell(c) => c,
            GateKind::Prim(op) => panic!("path through unmapped primitive {op}"),
        };
        let fo = tlib.equivalent_fanout(nl, gate.output(), cell);
        let (d, s) = tlib.delay_slew(cell, arc.pin, arc.vector, edge, fo, slew, corner);
        let d = d.max(0.1);
        let s = s.max(0.5);
        stages.push((d, s));
        total += d;
        slew = s;
        edge = edge.through(arc.polarity);
    }
    PathDelayBreakdown {
        launch,
        stages,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Library;
    use crate::enumerate::{EnumerationConfig, PathEnumerator};
    use sta_cells::Technology;
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::GateKind;

    /// The standalone calculator agrees with the enumerator's incremental
    /// accumulation.
    #[test]
    fn matches_enumerator_accumulation() {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let x = nl.add_gate(GateKind::Cell(nand2), &[a, b], None).unwrap();
        let y = nl
            .add_gate(GateKind::Cell(ao22), &[x, b, c, d], None)
            .unwrap();
        nl.mark_output(y);
        let corner = Corner::nominal(&tech);
        let cfg = EnumerationConfig::new(corner);
        let input_slew = cfg.input_slew;
        let (paths, _) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
        assert!(!paths.is_empty());
        for p in &paths {
            for (launch, timing) in [(Edge::Rise, &p.rise), (Edge::Fall, &p.fall)] {
                if let Some(t) = timing {
                    let bd = path_delay(&nl, &tlib, p, launch, input_slew, corner);
                    assert!(
                        (bd.total - t.arrival).abs() < 1e-6,
                        "standalone {} vs incremental {}",
                        bd.total,
                        t.arrival
                    );
                    assert_eq!(bd.stages.len(), t.gate_delays.len());
                    for ((d, _), gd) in bd.stages.iter().zip(&t.gate_delays) {
                        assert!((d - gd).abs() < 1e-6);
                    }
                }
            }
        }
    }
}
