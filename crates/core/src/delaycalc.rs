//! Stand-alone path delay calculation with the polynomial model.
//!
//! The enumerator accumulates delay incrementally during traversal; this
//! module recomputes a [`TruePath`]'s delay from scratch — used by the
//! repro harness (Tables 7–9 compare per-gate model delays against golden
//! electrical simulation) and as an independent cross-check of the
//! enumerator's bookkeeping.

use std::fmt;

use sta_cells::{Corner, Edge};
use sta_charlib::{CompiledCorner, TimingLibrary};
use sta_netlist::{CellId, GateId, GateKind, Netlist, PrimOp};

use crate::path::TruePath;

/// Per-gate delay breakdown of one launch polarity of a path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathDelayBreakdown {
    /// The launch edge this breakdown describes.
    pub launch: Edge,
    /// (delay, output slew) per traversed gate, in path order, ps.
    pub stages: Vec<(f64, f64)>,
    /// Total path delay, ps.
    pub total: f64,
}

/// Why a stand-alone delay calculation could not be carried out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelayCalcError {
    /// The path traverses a gate that is still a technology-independent
    /// primitive; the netlist must be technology-mapped before any delay
    /// model applies.
    UnmappedGate {
        /// The offending gate.
        gate: GateId,
        /// Its primitive operator.
        op: PrimOp,
    },
}

impl fmt::Display for DelayCalcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayCalcError::UnmappedGate { gate, op } => write!(
                f,
                "path traverses unmapped primitive {op} (gate #{}); run map_netlist first",
                gate.index()
            ),
        }
    }
}

impl std::error::Error for DelayCalcError {}

/// Recomputes the polynomial-model delay of `path` for the given launch
/// edge.
///
/// # Errors
///
/// Returns [`DelayCalcError::UnmappedGate`] if the path references gates
/// that are not technology-mapped.
pub fn path_delay(
    nl: &Netlist,
    tlib: &TimingLibrary,
    path: &TruePath,
    launch: Edge,
    input_slew: f64,
    corner: Corner,
) -> Result<PathDelayBreakdown, DelayCalcError> {
    path_delay_with(
        nl,
        tlib,
        path,
        launch,
        input_slew,
        |cell, arc, edge, fo, slew| {
            tlib.delay_slew(cell, arc.pin, arc.vector, edge, fo, slew, corner)
        },
    )
}

/// [`path_delay`] through a corner-compiled kernel table. Bit-identical to
/// the interpreted calculation at the kernel's corner (the kernels share
/// the interpreted models' arithmetic), with the per-arc polynomial walk
/// replaced by a dense table lookup.
///
/// # Errors
///
/// Returns [`DelayCalcError::UnmappedGate`] if the path references gates
/// that are not technology-mapped.
pub fn path_delay_compiled(
    nl: &Netlist,
    tlib: &TimingLibrary,
    kernel: &CompiledCorner,
    path: &TruePath,
    launch: Edge,
    input_slew: f64,
) -> Result<PathDelayBreakdown, DelayCalcError> {
    path_delay_with(
        nl,
        tlib,
        path,
        launch,
        input_slew,
        |cell, arc, edge, fo, slew| {
            kernel.eval(kernel.arc_id(cell, arc.pin, arc.vector), edge, fo, slew)
        },
    )
}

fn path_delay_with(
    nl: &Netlist,
    tlib: &TimingLibrary,
    path: &TruePath,
    launch: Edge,
    input_slew: f64,
    mut eval: impl FnMut(CellId, &crate::path::PathArc, Edge, f64, f64) -> (f64, f64),
) -> Result<PathDelayBreakdown, DelayCalcError> {
    let mut stages = Vec::with_capacity(path.arcs.len());
    let mut edge = launch;
    let mut slew = input_slew;
    let mut total = 0.0;
    for arc in &path.arcs {
        let gate = nl.gate(arc.gate);
        let cell = match gate.kind() {
            GateKind::Cell(c) => c,
            GateKind::Prim(op) => return Err(DelayCalcError::UnmappedGate { gate: arc.gate, op }),
        };
        let fo = tlib.equivalent_fanout(nl, gate.output(), cell);
        let (d, s) = eval(cell, arc, edge, fo, slew);
        let d = d.max(0.1);
        let s = s.max(0.5);
        stages.push((d, s));
        total += d;
        slew = s;
        edge = edge.through(arc.polarity);
    }
    Ok(PathDelayBreakdown {
        launch,
        stages,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{EnumerationConfig, PathEnumerator};
    use sta_cells::Library;
    use sta_cells::Technology;
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::GateKind;

    /// The standalone calculator agrees with the enumerator's incremental
    /// accumulation.
    #[test]
    fn matches_enumerator_accumulation() {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let x = nl.add_gate(GateKind::Cell(nand2), &[a, b], None).unwrap();
        let y = nl
            .add_gate(GateKind::Cell(ao22), &[x, b, c, d], None)
            .unwrap();
        nl.mark_output(y);
        let corner = Corner::nominal(&tech);
        let cfg = EnumerationConfig::new(corner);
        let input_slew = cfg.input_slew;
        let (paths, _) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
        assert!(!paths.is_empty());
        for p in &paths {
            for (launch, timing) in [(Edge::Rise, &p.rise), (Edge::Fall, &p.fall)] {
                if let Some(t) = timing {
                    let bd = path_delay(&nl, &tlib, p, launch, input_slew, corner)
                        .expect("mapped netlist");
                    assert!(
                        (bd.total - t.arrival).abs() < 1e-6,
                        "standalone {} vs incremental {}",
                        bd.total,
                        t.arrival
                    );
                    assert_eq!(bd.stages.len(), t.gate_delays.len());
                    for ((d, _), gd) in bd.stages.iter().zip(&t.gate_delays) {
                        assert!((d - gd).abs() < 1e-6);
                    }
                }
            }
        }
    }

    /// The kernel-table calculator agrees bitwise with the interpreted
    /// one at the compiled corner.
    #[test]
    fn compiled_calculation_is_bit_identical() {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let x = nl.add_gate(GateKind::Cell(nand2), &[a, b], None).unwrap();
        let y = nl
            .add_gate(GateKind::Cell(ao22), &[x, b, c, d], None)
            .unwrap();
        nl.mark_output(y);
        let corner = Corner::nominal(&tech);
        let kernel = tlib.compile_corner(corner);
        let (paths, _) =
            PathEnumerator::new(&nl, &lib, &tlib, EnumerationConfig::new(corner)).run();
        assert!(!paths.is_empty());
        for p in &paths {
            for launch in Edge::BOTH {
                let int = path_delay(&nl, &tlib, p, launch, 60.0, corner).unwrap();
                let cmp = path_delay_compiled(&nl, &tlib, &kernel, p, launch, 60.0).unwrap();
                assert_eq!(int.total.to_bits(), cmp.total.to_bits());
                assert_eq!(int.stages.len(), cmp.stages.len());
                for ((di, si), (dc, sc)) in int.stages.iter().zip(&cmp.stages) {
                    assert_eq!(di.to_bits(), dc.to_bits());
                    assert_eq!(si.to_bits(), sc.to_bits());
                }
            }
        }
    }

    /// An unmapped primitive in the path is reported as an error, not a
    /// panic.
    #[test]
    fn unmapped_primitive_is_an_error() {
        use crate::path::PathArc;
        use sta_cells::Polarity;
        use sta_netlist::PrimOp;

        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Not), &[a], None)
            .unwrap();
        nl.mark_output(z);
        let gate = nl.net(z).driver().unwrap();
        let path = TruePath {
            source: a,
            nodes: vec![a, z],
            arcs: vec![PathArc {
                gate,
                pin: 0,
                vector: 0,
                polarity: Polarity::Inverting,
            }],
            rise: None,
            fall: None,
            input_vector: vec![crate::path::PiValue::Transition],
        };
        let corner = Corner::nominal(&tech);
        let err = path_delay(&nl, &tlib, &path, Edge::Rise, 40.0, corner).unwrap_err();
        assert_eq!(
            err,
            DelayCalcError::UnmappedGate {
                gate,
                op: PrimOp::Not
            }
        );
        assert!(err.to_string().contains("unmapped"));
    }
}
