//! Conflict-driven nogood learning for the sensitization search.
//!
//! The enumeration DFS refutes the same side-input assignments over and
//! over: every partial path that reaches a gate through the same (pin,
//! vector) arc re-runs the same backward justification of the same side
//! requirements, and in the parallel engine every *root task* repeats the
//! refutations its siblings already paid for. This module caches those
//! infeasibility proofs as **nogoods** — small sets of required net
//! values that provably admit no primary-input witness under the current
//! launch source — so a dead branch is refuted once per run instead of
//! once per subtree per root task.
//!
//! # Soundness (why a nogood hit can never drop a true path)
//!
//! A stored nogood is a set of per-polarity 9-valued literals
//! `(net, value)` together with the launch source it was learned under.
//! Its meaning: *on a fresh engine with that source's toggle deltas
//! installed, requiring exactly these values is unjustifiable* — no
//! primary-input assignment forward-evaluates to values refining all of
//! them. That claim is **verified at learn time**: the candidate cut is
//! replayed on a scratch [`ImplicationEngine`] and re-justified from
//! scratch; only a definitive [`JustifyOutcome::Unsatisfiable`] (or an
//! immediate assignment conflict) is stored. A budget abort during the
//! replay stores nothing — an abort proves nothing.
//!
//! Three disciplines keep a stored refutation sound, all learned from
//! c1908 worst-path regressions:
//!
//! * **The replay models the launch.** It assigns the source's
//!   transition before the literals, exactly as the DFS root does. The
//!   toggle deltas assume the source toggles, so on a fresh engine
//!   without the launch the source could be assigned neither a stable
//!   value (its own delta conflicts) nor a transition (justification
//!   candidates are stable-only) — any literal whose only support flows
//!   through the source would then be "refuted" vacuously, and the
//!   clause could kill feasible branches.
//! * **Literals are restricted to the fully-stable values `S0`/`S1`.**
//!   The justifier explores stable candidate assignments, so its
//!   `Unsatisfiable` answer is definitive exactly on stable
//!   requirements; for a transition or half-known requirement (`R`,
//!   `X0`, …) it can report a false refutation even with the launch on
//!   the trail. Extraction drops non-stable components instead
//!   (generalizing the cut, which the replay must then still prove).
//! * **The transition support of the cut must be closed**
//!   ([`support_is_closed`]). The justifier assigns only stable values
//!   to free nets, but forward propagation can derive stable values
//!   *from transitions* — two correlated transitions cancel through an
//!   XOR — so a literal can be satisfiable only by routing the launch
//!   through a cone net the replay left unknown. `Unsatisfiable` is
//!   definitive only when every net in the literals' fanin cone either
//!   already carries a fully-defined value in the replay state or
//!   provably cannot toggle (`Toggle::Zero`); otherwise the candidate
//!   clause is discarded. In the search state that fired the original
//!   refutation the partial path pins those cone nets, which is exactly
//!   why the refutation does not generalize away from it.
//!
//! At a consult site the engine's current state `cur` *refines* every
//! literal of a matching nogood (checked with the same `refines` order
//! the justification search uses). Suppose the current obligation set had
//! a witness: its forward simulation values refine `cur` on every
//! constrained net, hence refine the stored literals, and the same
//! primary-input assignment — replayed against the stored literals alone,
//! under the same toggle deltas — would witness the stored problem. That
//! contradicts the verified refutation, so no witness exists and the
//! justification call being skipped could only have returned
//! `Unsatisfiable` or `BudgetExhausted`; the caller treats both exactly
//! like a nogood hit (the branch is dropped). The emitted path set is
//! therefore unchanged — only the work spent refuting it.
//!
//! Two rules keep the claim byte-exact, mirroring the bit-parallel
//! filter's discipline (see `crate::bitsim`):
//!
//! * **Full-kill only.** A hit is acted on only when *every* alive
//!   polarity is refuted by some stored nogood. Narrowing the alive mask
//!   on a partial hit would be unsound for byte identity: the
//!   subset-minimal candidate enumeration is mask-dependent, so a
//!   narrowed mask can change which witness is found first.
//! * **Per-polarity literals, never cross-applied.** The rising and
//!   falling analyses are independent; a nogood learned from the rising
//!   components is only ever matched against rising components.
//!
//! Nogoods are keyed by `(source, gate, pin, vector)` — the toggle
//! deltas are per-source, so proofs never transfer across sources, and
//! the arc key keeps the candidate lists short and aligned with the one
//! call site that consults them. Within a source the same arc is tried
//! from many partial paths (serial) and many root tasks (parallel);
//! that is the reuse being harvested.
//!
//! # Extraction: most general candidate first
//!
//! Learning tries two cuts per refuted polarity, in generality order:
//!
//! 1. **Side-values-only.** The literals are exactly the arc's own side
//!    requirements (the stable values the sensitization vector demands on
//!    the gate's other inputs), with no partial-path context. If *that*
//!    verifies unsatisfiable, the arc is dead for this source from
//!    anywhere: the engine assigns precisely these values on every
//!    activation of the arc, so the `refines` match is immediate and
//!    every future try of the key is a hit. One verification replay buys
//!    a permanent refutation.
//! 2. **Fanin-cone cut.** Only when the side values alone are satisfiable
//!    (the refutation leaned on upstream partial-path state) does
//!    extraction widen to the bounded fanin cone of the side nets,
//!    producing a more specific clause that still generalizes across
//!    sibling branches sharing that upstream state.
//!
//! # Sharing across the work-stealing pool
//!
//! [`NogoodStore`] is a sharded `RwLock` map with copy-on-write entry
//! lists (`Arc<Vec<Nogood>>`) and a monotonically increasing epoch
//! published through an `AtomicU64`, mirroring the shared pruning bound
//! in `parallel`. Workers consult through a per-worker [`NogoodView`]
//! cache that revalidates only when the epoch moves, so the hot path is
//! one relaxed atomic load plus a local hash lookup. Because a hit only
//! ever drops a branch that emits nothing, it is harmless that workers
//! observe insertions at different times — sharing affects *effort*,
//! never *results*, which is why the store needs no cross-thread
//! ordering beyond the locks themselves.
//!
//! The only engine-visible coupling is the global decision budget
//! (`EnumerationConfig::max_decisions`): skipped justification calls do
//! not spend decisions, so a run that *truncates on that budget* can
//! truncate at a different point with learning on. The catalog budgets
//! are far above what any pinned circuit spends; byte identity is
//! guaranteed whenever the global budget does not bite.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use sta_logic::{Dual, ImplicationEngine, Mask, Toggle, V9};
use sta_netlist::{GateId, NetId, Netlist};

use crate::justify::{proves_unsat, refines, JustifyBudget, JustifyScratch};

/// Shard count of the store; a small power of two keeps the modulo a
/// mask while spreading unrelated keys across locks.
const SHARDS: usize = 16;

/// Per-key cap on stored nogoods. Consulting scans the whole list, so the
/// cap bounds the hot-path cost; later proofs for a saturated key are
/// simply not stored (dropping a learnable nogood is always sound).
pub const MAX_PER_KEY: usize = 12;

/// Literal cap per nogood. A cut wider than this is too specific to ever
/// hit again and too slow to check; learning skips it.
pub const MAX_LITS: usize = 48;

/// Cap on nets visited while collecting the fanin cone of a failed side
/// set. Cuts that spill past it are abandoned.
pub const CONE_CAP: usize = 160;

/// Minimum decisions a refutation must have cost before it is worth
/// minimizing, verifying and storing. Refutations below the bar spent
/// all their effort in forward propagation, and most of those are still
/// worth caching: a hit skips the whole justification set-up, not just
/// the counted decisions.
pub const MIN_LEARN_DECISIONS: u64 = 1;

/// Decision budget of the learn-time verification replay. If the relaxed
/// (cone-only) problem cannot be refuted within this budget the candidate
/// nogood is discarded — soundness by construction.
pub const VERIFY_DECISION_BUDGET: u64 = 4096;

/// Canonical key of a learned clause: the proof is specific to the launch
/// source (toggle deltas) and indexed by the arc whose side assignment
/// failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NogoodKey {
    /// Launch source the toggle analysis — and therefore the proof —
    /// belongs to.
    pub src: NetId,
    /// Gate whose side inputs were being justified.
    pub gate: GateId,
    /// Entry pin of the arc.
    pub pin: u8,
    /// Sensitization-vector index of the arc.
    pub vector: u32,
}

/// One verified infeasible sub-assignment (see the module doc).
#[derive(Clone, Debug)]
pub struct Nogood {
    /// `true` = literals are rising-analysis components, `false` =
    /// falling. Never cross-applied.
    pub pol_r: bool,
    /// Required 9-valued values that jointly admit no witness.
    pub lits: Vec<(NetId, V9)>,
    /// Decisions the original refutation cost — the estimate credited to
    /// `learn.decisions_saved` when this nogood fires.
    pub cost: u64,
}

/// Sharded, epoch-published store of learned nogoods, shared by every
/// worker of a run (and used single-threaded by the serial engine).
#[derive(Debug)]
pub struct NogoodStore {
    shards: Vec<RwLock<HashMap<NogoodKey, Arc<Vec<Nogood>>>>>,
    /// Bumped on every insertion; per-worker views revalidate their
    /// cached entry lists when it moves. Pure cache invalidation — a
    /// stale view only misses hits.
    epoch: AtomicU64,
}

impl Default for NogoodStore {
    fn default() -> Self {
        Self::new()
    }
}

impl NogoodStore {
    /// An empty store.
    pub fn new() -> Self {
        NogoodStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            epoch: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &NogoodKey) -> &RwLock<HashMap<NogoodKey, Arc<Vec<Nogood>>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The stored list for `key`, if any.
    pub fn get(&self, key: &NogoodKey) -> Option<Arc<Vec<Nogood>>> {
        self.shard(key)
            .read()
            .expect("nogood shard")
            .get(key)
            .cloned()
    }

    /// Stores a verified nogood under `key` (copy-on-write so readers
    /// holding the old list are undisturbed). Returns `false` when the
    /// per-key cap is already reached and the clause was dropped.
    pub fn insert(&self, key: NogoodKey, nogood: Nogood) -> bool {
        {
            let mut shard = self.shard(&key).write().expect("nogood shard");
            let entry = shard.entry(key).or_insert_with(|| Arc::new(Vec::new()));
            if entry.len() >= MAX_PER_KEY {
                return false;
            }
            let mut list = Vec::with_capacity(entry.len() + 1);
            list.extend(entry.iter().cloned());
            list.push(nogood);
            *entry = Arc::new(list);
        }
        self.epoch.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Total stored nogoods across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("nogood shard")
                    .values()
                    .map(|l| l.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// `true` when nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of the whole table, for audits (the lint
    /// LEARN rules replay every entry).
    pub fn snapshot(&self) -> Vec<(NogoodKey, Arc<Vec<Nogood>>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().expect("nogood shard");
            out.extend(shard.iter().map(|(k, v)| (*k, v.clone())));
        }
        out.sort_by_key(|(k, _)| (k.src, k.gate, k.pin, k.vector));
        out
    }
}

/// A cached shard read: the epoch it was taken at and the key's list,
/// if the store had one.
type CachedList = (u64, Option<Arc<Vec<Nogood>>>);

/// Per-worker read-through cache over a [`NogoodStore`]. Entries carry
/// the epoch they were read at and are refreshed only when the store's
/// epoch has moved since.
#[derive(Debug, Default)]
pub struct NogoodView {
    cache: HashMap<NogoodKey, CachedList>,
}

impl NogoodView {
    /// An empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current list for `key`, served locally while the store's
    /// epoch is unchanged.
    pub fn get(&mut self, store: &NogoodStore, key: NogoodKey) -> Option<Arc<Vec<Nogood>>> {
        let epoch = store.epoch();
        if let Some((seen, list)) = self.cache.get(&key) {
            if *seen == epoch {
                return list.clone();
            }
        }
        let list = store.get(&key);
        self.cache.insert(key, (epoch, list.clone()));
        list
    }
}

/// Returns `Some(saved)` when **every** alive polarity of the current
/// engine state is refuted by some stored nogood — the full-kill rule —
/// where `saved` is the largest original refutation cost among the
/// matching clauses (the effort estimate for `learn.decisions_saved`).
/// Returns `None` if any alive polarity survives.
pub(crate) fn full_kill(
    nogoods: &[Nogood],
    eng: &ImplicationEngine<'_>,
    alive: Mask,
) -> Option<u64> {
    let mut saved = 0u64;
    for pol_r in [true, false] {
        if !(if pol_r { alive.r } else { alive.f }) {
            continue;
        }
        let mut matched = None;
        'clause: for ng in nogoods.iter().filter(|n| n.pol_r == pol_r) {
            for &(net, v) in &ng.lits {
                let cur = eng.value(net);
                let cur = if pol_r { cur.r } else { cur.f };
                if !refines(v, cur) {
                    continue 'clause;
                }
            }
            matched = Some(ng.cost);
            break;
        }
        match matched {
            Some(cost) => saved = saved.max(cost),
            None => return None,
        }
    }
    Some(saved)
}

/// Reusable buffers of the cone-cut extraction (one set per worker).
#[derive(Debug, Default)]
pub(crate) struct ConeScratch {
    queue: Vec<NetId>,
    seen: Vec<bool>,
}

/// Extracts the candidate cut for one polarity: the non-unknown
/// `pol_r`-components of every net in the union of fanin cones of the
/// failed side nets. Returns `None` when the cone or literal caps are
/// exceeded (the cut would be too specific to pay off) or when the cut
/// is empty.
pub(crate) fn extract_cut(
    eng: &ImplicationEngine<'_>,
    nl: &Netlist,
    side: &[NetId],
    pol_r: bool,
    scratch: &mut ConeScratch,
) -> Option<Vec<(NetId, V9)>> {
    scratch.queue.clear();
    if scratch.seen.len() != nl.num_nets() {
        scratch.seen = vec![false; nl.num_nets()];
    } else {
        scratch.seen.fill(false);
    }
    for &net in side {
        if !scratch.seen[net.index()] {
            scratch.seen[net.index()] = true;
            scratch.queue.push(net);
        }
    }
    let mut lits = Vec::new();
    let mut head = 0;
    while head < scratch.queue.len() {
        if scratch.queue.len() > CONE_CAP {
            return None;
        }
        let net = scratch.queue[head];
        head += 1;
        let v = eng.value(net);
        let v = if pol_r { v.r } else { v.f };
        // Only fully-stable components may become literals: the
        // verification replay justifies over stable candidate
        // assignments (plus the launch), so its `Unsatisfiable` is
        // definitive only for stable requirements — a transition or
        // half-known component can make it report a false refutation
        // (the c1908 worst-path regression). Dropping the component
        // merely generalizes the candidate cut, and the replay still has
        // to prove the generalized clause before it is stored.
        if v == V9::S0 || v == V9::S1 {
            if lits.len() >= MAX_LITS {
                return None;
            }
            lits.push((net, v));
        }
        if let Some(driver) = nl.net(net).driver() {
            for &input in nl.gate(driver).inputs() {
                if !scratch.seen[input.index()] {
                    scratch.seen[input.index()] = true;
                    scratch.queue.push(input);
                }
            }
        }
    }
    if lits.is_empty() {
        None
    } else {
        Some(lits)
    }
}

/// The third learning discipline (see the module docs): a replayed
/// `Unsatisfiable` is definitive only when the refutation's search space
/// was closed under every route the launch could take. The justifier
/// assigns only *stable* values to free nets, while forward propagation
/// can derive stable values from transitions (two correlated transitions
/// cancel through an XOR), so a requirement can be satisfiable only via a
/// transition on a cone net the replay never pinned — a witness the
/// backward search cannot construct. This walks the literals' fanin cone
/// in the replay state and accepts it only if every net either carries a
/// fully-defined `pol_r`-component (the launch's forward implications
/// pinned it) or provably cannot toggle (`Toggle::Zero`; with no deltas
/// installed every net is treated as toggle-capable). Cones larger than
/// the extraction cap are rejected outright. Conservative by design: a
/// rejection merely discards a candidate clause.
pub fn support_is_closed(
    eng: &ImplicationEngine<'_>,
    nl: &Netlist,
    toggles: Option<&[Toggle]>,
    pol_r: bool,
    lits: &[(NetId, V9)],
) -> bool {
    let mut seen = vec![false; nl.num_nets()];
    let mut queue: Vec<NetId> = Vec::with_capacity(lits.len());
    for &(n, _) in lits {
        if !seen[n.index()] {
            seen[n.index()] = true;
            queue.push(n);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        if queue.len() > CONE_CAP {
            return false;
        }
        let net = queue[head];
        head += 1;
        let v = eng.value(net);
        let v = if pol_r { v.r } else { v.f };
        if !v.is_fully_defined() && toggles.is_none_or(|t| t[net.index()] != Toggle::Zero) {
            return false;
        }
        if let Some(driver) = nl.net(net).driver() {
            for &input in nl.gate(driver).inputs() {
                if !seen[input.index()] {
                    seen[input.index()] = true;
                    queue.push(input);
                }
            }
        }
    }
    true
}

/// Learn-time verification replay: on a scratch engine carrying the same
/// toggle deltas, asserts the launch transition on `src` and then
/// requires exactly `lits` in the `pol_r` analysis, re-justifying from
/// scratch. `true` only on a *definitive* refutation — an immediate
/// assignment conflict or a complete `Unsatisfiable` within
/// [`VERIFY_DECISION_BUDGET`] whose transition support is closed
/// ([`support_is_closed`]); a budget abort or an open support cone
/// returns `false` and the candidate is discarded.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_cut(
    eng: &mut ImplicationEngine<'_>,
    nl: &Netlist,
    toggles: Option<&[Toggle]>,
    src: NetId,
    pol_r: bool,
    lits: &[(NetId, V9)],
    todo: &mut Vec<NetId>,
    scratch: &mut JustifyScratch,
) -> bool {
    eng.reset();
    eng.set_toggles(toggles.map(|t| t.to_vec()));
    let mask = Mask {
        r: pol_r,
        f: !pol_r,
    };
    let mut alive = mask;
    // Model the launch: every hit context has the source's transition on
    // the trail (the DFS root assigns it before any arc is tried), and
    // the toggle deltas assume it — without it the replay could neither
    // assign the source a stable value (its own delta conflicts) nor a
    // transition (candidates are stable-only), so any literal whose only
    // support flows through the source would be "refuted" vacuously and
    // the stored clause could kill feasible branches (the c1908
    // worst-path regression; see the module docs).
    let conflict = eng.assign(src, Dual::transition(false), alive);
    alive = alive.minus(conflict);
    if !alive.any() {
        // The launch itself is infeasible in this polarity: no hit
        // context can arise, the clause is vacuously refutation-safe.
        eng.reset();
        return true;
    }
    for &(net, v) in lits {
        let want = if pol_r {
            Dual { r: v, f: V9::XX }
        } else {
            Dual { r: V9::XX, f: v }
        };
        let conflict = eng.assign(net, want, alive);
        alive = alive.minus(conflict);
        if !alive.any() {
            // The cut contradicts itself (or the deltas) already under
            // forward propagation — refuted outright.
            eng.reset();
            return true;
        }
    }
    todo.clear();
    todo.extend(lits.iter().map(|&(n, _)| n));
    let mut budget = JustifyBudget::with_decision_limit(VERIFY_DECISION_BUDGET);
    let refuted = proves_unsat(eng, nl, todo, alive, &mut budget, scratch)
        && support_is_closed(eng, nl, toggles, pol_r, lits);
    eng.reset();
    refuted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src: u32, gate: u32) -> NogoodKey {
        NogoodKey {
            src: NetId::from_index(src as usize),
            gate: GateId::from_index(gate as usize),
            pin: 0,
            vector: 0,
        }
    }

    fn clause(pol_r: bool, cost: u64) -> Nogood {
        Nogood {
            pol_r,
            lits: vec![(NetId::from_index(0), V9::S0)],
            cost,
        }
    }

    #[test]
    fn insert_bumps_epoch_and_view_revalidates() {
        let store = NogoodStore::new();
        let mut view = NogoodView::new();
        let k = key(0, 1);
        assert!(view.get(&store, k).is_none());
        let e0 = store.epoch();
        assert!(store.insert(k, clause(true, 10)));
        assert!(store.epoch() > e0, "insert publishes a new epoch");
        let list = view.get(&store, k).expect("view sees the insert");
        assert_eq!(list.len(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn per_key_cap_drops_extra_clauses() {
        let store = NogoodStore::new();
        let k = key(2, 3);
        for i in 0..MAX_PER_KEY {
            assert!(store.insert(k, clause(true, i as u64)));
        }
        assert!(!store.insert(k, clause(true, 99)), "cap reached");
        assert_eq!(store.get(&k).unwrap().len(), MAX_PER_KEY);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let store = NogoodStore::new();
        store.insert(key(5, 0), clause(true, 1));
        store.insert(key(1, 0), clause(false, 2));
        store.insert(key(3, 7), clause(true, 3));
        let snap = store.snapshot();
        assert_eq!(snap.len(), 3);
        let srcs: Vec<usize> = snap.iter().map(|(k, _)| k.src.index()).collect();
        assert_eq!(srcs, vec![1, 3, 5]);
    }
}
