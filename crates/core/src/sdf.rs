//! SDF (Standard Delay Format) export of instance delays.
//!
//! Downstream gate-level simulators consume per-instance `IOPATH` delays.
//! SDF — like Liberty — has no notion of sensitization vectors, so the
//! writer exposes the choice the paper forces tools to make explicit:
//!
//! * [`SdfVectorPolicy::Reference`] — annotate every arc with its Case-1
//!   (easiest) vector delay: what a vector-blind flow effectively ships;
//! * [`SdfVectorPolicy::Worst`] — annotate with the per-arc worst vector
//!   delay: conservative, never optimistic.
//!
//! The delta between the two files *is* the paper's headline phenomenon,
//! instance by instance.

use std::fmt::Write as _;

use sta_cells::{Corner, Edge, Library};
use sta_charlib::TimingLibrary;
use sta_netlist::{GateKind, Netlist};

/// Which sensitization vector annotates each SDF arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SdfVectorPolicy {
    /// The reference (Case 1) vector — vector-blind flows' implicit pick.
    Reference,
    /// The per-arc worst vector — conservative annotation.
    Worst,
}

/// Writes a minimal SDF 3.0 file annotating every gate instance's
/// `IOPATH` rise/fall delays at the given corner and input slew.
///
/// # Panics
///
/// Panics if the netlist contains unmapped primitives.
pub fn write_sdf(
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    corner: Corner,
    input_slew: f64,
    policy: SdfVectorPolicy,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(DELAYFILE");
    let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
    let _ = writeln!(out, "  (DESIGN \"{}\")", nl.name());
    let _ = writeln!(out, "  (TIMESCALE 1ps)");
    let _ = writeln!(
        out,
        "  (VOLTAGE {:.2}) (TEMPERATURE {:.0})",
        corner.vdd, corner.temperature
    );
    for g in nl.topo_gates() {
        let gate = nl.gate(g);
        let cell_id = match gate.kind() {
            GateKind::Cell(c) => c,
            GateKind::Prim(op) => panic!("write_sdf on unmapped primitive {op}"),
        };
        let cell = lib.cell(cell_id);
        let ct = tlib.cell(cell_id);
        let fo = tlib.equivalent_fanout(nl, gate.output(), cell_id);
        let _ = writeln!(out, "  (CELL");
        let _ = writeln!(out, "    (CELLTYPE \"{}\")", cell.name());
        let _ = writeln!(out, "    (INSTANCE {})", nl.net_label(gate.output()));
        let _ = writeln!(out, "    (DELAY (ABSOLUTE");
        for pin in 0..gate.fanin() as u8 {
            // Per the policy, pick the vector whose delay annotates the arc.
            let delay_for = |edge: Edge| -> f64 {
                let n = ct.num_vectors(pin);
                let eval = |v: usize| {
                    ct.variant(pin, v)
                        .for_edge(edge)
                        .eval(fo, input_slew, corner)
                        .0
                };
                match policy {
                    SdfVectorPolicy::Reference => eval(0),
                    SdfVectorPolicy::Worst => (0..n).map(eval).fold(f64::NEG_INFINITY, f64::max),
                }
            };
            // SDF convention: the pair annotates output-rise / output-fall.
            // Map through the reference polarity of the arc.
            let pol = ct.variant(pin, 0).polarity;
            let (in_for_rise, in_for_fall) = match pol {
                sta_cells::Polarity::NonInverting => (Edge::Rise, Edge::Fall),
                sta_cells::Polarity::Inverting => (Edge::Fall, Edge::Rise),
            };
            let _ = writeln!(
                out,
                "      (IOPATH {} Z ({:.1}) ({:.1}))",
                cell.pin_names()[pin as usize],
                delay_for(in_for_rise),
                delay_for(in_for_fall),
            );
        }
        let _ = writeln!(out, "    ))");
        let _ = writeln!(out, "  )");
    }
    let _ = writeln!(out, ")");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Technology;
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::Netlist;

    #[test]
    fn sdf_worst_annotations_dominate_reference() {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let mut nl = Netlist::new("sdf_t");
        let ins: Vec<_> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let z = nl.add_gate(GateKind::Cell(ao22), &ins, Some("z")).unwrap();
        nl.mark_output(z);
        let corner = Corner::nominal(&tech);
        let reference = write_sdf(&nl, &lib, &tlib, corner, 60.0, SdfVectorPolicy::Reference);
        let worst = write_sdf(&nl, &lib, &tlib, corner, 60.0, SdfVectorPolicy::Worst);
        assert!(reference.contains("(DELAYFILE"));
        assert!(reference.contains("CELLTYPE \"AO22\""));
        assert_eq!(reference.matches("IOPATH").count(), 4);
        // Extract all numbers; worst must dominate reference pairwise.
        let nums = |text: &str| -> Vec<f64> {
            text.lines()
                .filter(|l| l.contains("IOPATH"))
                .flat_map(|l| {
                    l.split(['(', ')'])
                        .filter_map(|t| t.trim().parse::<f64>().ok())
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let (r, w) = (nums(&reference), nums(&worst));
        assert_eq!(r.len(), w.len());
        assert!(!r.is_empty());
        let mut strictly_larger = 0;
        for (a, b) in r.iter().zip(&w) {
            assert!(*b >= *a - 1e-9, "worst {b} must dominate reference {a}");
            if *b > a + 1e-9 {
                strictly_larger += 1;
            }
        }
        assert!(
            strictly_larger > 0,
            "AO22 arcs must show a vector-dependent delta"
        );
    }
}
