//! Parallel true-path enumeration over a work-stealing pool.
//!
//! The search space of the single-pass algorithm shards naturally into
//! **root tasks**: one per (primary input, launch-gate, sensitization
//! vector) triple, i.e. one per first arc out of a source. Each subtree is
//! independent given a private implication engine, so the tasks are
//! distributed over a crossbeam deque pool (global FIFO injector,
//! per-worker deques, random-victim stealing) and every worker runs the
//! unchanged serial [`Search`] machinery with its own engine and its own
//! justification / delay-model memo tables.
//!
//! # Deterministic merge
//!
//! Tasks are generated in the exact order the serial engine would open
//! them and carry a sequence number. Workers buffer the paths of one task
//! and send `(seq, paths)` over a channel; the coordinator releases
//! buffers to the caller's sink strictly in sequence order. In full
//! enumeration this makes the `run_with` stream — and therefore the
//! `run` result — byte-identical to the serial engine at any thread
//! count.
//!
//! # Shared pruning bound (N-worst mode)
//!
//! Each worker keeps the serial engine's local admission threshold (its
//! N-th-largest admitted arrival) and additionally publishes it to an
//! `AtomicU64` holding a total-order encoding of the `f64` bound
//! (monotone `fetch_max`, relaxed ordering — the bound is a pure
//! performance hint and never affects correctness). Soundness: a worker's
//! N-th-largest admitted arrival never exceeds the global N-th-largest
//! `T` (its admissions are a subset of all paths), so the effective
//! threshold `max(local, shared)` is always ≤ `T`; with tie-inclusive
//! admission (`w < threshold` rejects, ties pass) every path with
//! arrival ≥ `T` reaches the sink under any schedule. `run` then sorts by
//! the canonical total order of [`TruePath::canonical_cmp`] and truncates
//! to N — identical output to serial, though the *superset* streamed by
//! `run_with` (and the search-effort counters) may differ with the
//! schedule.
//!
//! # Budgets
//!
//! `max_decisions` / `max_paths` are enforced **per root task** here (the
//! serial engine enforces them globally); a parallel run is still
//! deterministic for a fixed configuration, but when a budget actually
//! bites, the truncation point differs from the serial engine's.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::{mpsc, Arc};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use sta_cells::Library;
use sta_charlib::{ModelCache, TimingLibrary};
use sta_logic::{toggle_analysis, Dual, ImplicationEngine, Mask, Toggle};
use sta_netlist::{GateId, NetId, Netlist};

use crate::arrival::ArcBounds;
use crate::enumerate::{
    cell_of, sensitizable_reach, EnumerationConfig, EnumerationStats, PathEnumerator, PolTimings,
    Search,
};
use crate::justify::{JustifyCache, JustifyScratch};
use crate::learn::{ConeScratch, NogoodStore, NogoodView};
use crate::path::{PathArc, TruePath};

/// Total-order encoding of an `f64` into a `u64`: `encode` is strictly
/// monotone over the reals (including infinities), so `fetch_max` on the
/// encoded value implements an atomic floating-point maximum.
pub(crate) fn encode_bound(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`encode_bound`].
pub(crate) fn decode_bound(e: u64) -> f64 {
    f64::from_bits(if e >> 63 == 1 { e & !(1 << 63) } else { !e })
}

/// One shard of the search: the first arc out of a source, identified by
/// its position in the serial engine's opening order.
struct RootTask {
    /// Position in serial order — the merge key.
    seq: usize,
    /// Index into the plan list.
    src: usize,
    gate: GateId,
    pin: u8,
    vector: usize,
}

/// Per-source state every task of that source needs, computed once by the
/// coordinator.
struct SrcPlan {
    src: NetId,
    deltas: Vec<Toggle>,
    reach: Vec<bool>,
    /// Toggle-compatible arrival upper bound to any PO, per net
    /// (see [`crate::arrival::tightened_remaining`]); present only when
    /// learning-mode dominance pruning is active.
    tight_rem: Option<Vec<f64>>,
}

/// Read-only context shared by all workers.
struct WorkerCtx<'a> {
    nl: &'a Netlist,
    lib: &'a Library,
    tlib: &'a TimingLibrary,
    cfg: &'a EnumerationConfig,
    /// Corner-compiled kernel table, folded once by the enumerator and
    /// shared read-only by every worker.
    kernel: Option<&'a sta_charlib::CompiledCorner>,
    /// Compiled bit-parallel simulation program, built once by the
    /// enumerator; each worker wraps it in its own `BitsimFilter`.
    schedule: Option<&'a sta_logic::Schedule>,
    plans: &'a [SrcPlan],
    remaining: &'a Option<Vec<f64>>,
    fanouts: &'a [f64],
    is_output: &'a [bool],
    injector: &'a Injector<RootTask>,
    shared_bound: &'a AtomicU64,
    /// Per-source published bounds (indexed like `plans`), replacing the
    /// single `shared_bound` when
    /// [`EnumerationConfig::per_source_n_worst`] isolates the admission
    /// threshold per source. `None` otherwise.
    src_bounds: Option<&'a [AtomicU64]>,
    /// Shared learned-nogood store, cloned into every worker's `Search`
    /// so clauses learned on one worker prune the others. `None` when
    /// `cfg.learning` is off.
    nogoods: Option<Arc<NogoodStore>>,
    /// Per-arc delay upper bounds for dominance pruning, computed once
    /// by the coordinator and shared read-only.
    arc_bounds: Option<Arc<ArcBounds>>,
}

/// Runs the enumeration of `enumr` over `cfg.threads` workers, streaming
/// emitted paths to `sink` in the serial engine's order.
pub(crate) fn run_parallel(
    enumr: &PathEnumerator<'_>,
    sink: &mut dyn FnMut(TruePath),
) -> EnumerationStats {
    let nl = enumr.nl;
    let lib = enumr.lib;
    let is_output = enumr.output_flags();
    let remaining = enumr.prune_bounds();
    let fanouts = enumr.fanouts();
    let arc_bounds = enumr.learn_arc_bounds();
    let nogoods = enumr.cfg.learning.then(|| {
        enumr
            .nogood_store
            .clone()
            .unwrap_or_else(|| Arc::new(NogoodStore::new()))
    });

    // Plan phase: replicate the serial per-source setup and enumerate the
    // root arcs in serial order.
    let mut plans: Vec<SrcPlan> = Vec::new();
    let mut tasks: Vec<RootTask> = Vec::new();
    let mut eng = ImplicationEngine::new(nl, lib);
    if let Some(f) = &enumr.cfg.source_filter {
        assert_eq!(
            f.len(),
            nl.inputs().len(),
            "source filter length must match the primary-input count"
        );
    }
    for (pi_pos, &src) in nl.inputs().iter().enumerate() {
        if let Some(f) = &enumr.cfg.source_filter {
            if !f[pi_pos] {
                continue;
            }
        }
        let deltas = toggle_analysis(nl, lib, src);
        let reach = sensitizable_reach(nl, lib, &deltas, &is_output);
        if !reach[src.index()] {
            continue;
        }
        eng.set_toggles(Some(deltas.clone()));
        let mark = eng.mark();
        let conflicts = eng.assign(src, Dual::transition(false), Mask::BOTH);
        let mask = Mask::BOTH.minus(conflicts);
        eng.rollback(mark);
        eng.set_toggles(None);
        if !mask.any() {
            continue;
        }
        let src_idx = plans.len();
        for pr in nl.net(src).fanout() {
            let out = nl.gate(pr.gate).output();
            if !reach[out.index()] && !is_output[out.index()] {
                continue;
            }
            let cell_id = cell_of(nl, pr.gate);
            let n_vectors = lib.cell(cell_id).vectors_of(pr.pin as u8).len();
            for vector in 0..n_vectors {
                tasks.push(RootTask {
                    seq: tasks.len(),
                    src: src_idx,
                    gate: pr.gate,
                    pin: pr.pin as u8,
                    vector,
                });
            }
        }
        let tight_rem = arc_bounds
            .as_ref()
            .map(|ab| crate::arrival::tightened_remaining(nl, lib, ab, &deltas, &is_output));
        plans.push(SrcPlan {
            src,
            deltas,
            reach,
            tight_rem,
        });
    }
    let n_tasks = tasks.len();
    if n_tasks == 0 {
        return EnumerationStats::default();
    }

    let threads = enumr.cfg.threads.clamp(1, n_tasks);
    let injector = Injector::new();
    for t in tasks {
        injector.push(t);
    }
    let locals: Vec<Worker<RootTask>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<RootTask>> = locals.iter().map(Worker::stealer).collect();
    let shared_bound = AtomicU64::new(encode_bound(f64::NEG_INFINITY));
    // Per-source bounds for threshold isolation (see the config docs):
    // one atomic per planned source, so workers on the same source still
    // share pruning progress while sources stay independent.
    let src_bounds: Option<Vec<AtomicU64>> = enumr.cfg.per_source_n_worst.then(|| {
        (0..plans.len())
            .map(|_| AtomicU64::new(encode_bound(f64::NEG_INFINITY)))
            .collect()
    });
    let ctx = WorkerCtx {
        nl,
        lib,
        tlib: enumr.tlib,
        cfg: &enumr.cfg,
        kernel: enumr.kernel.as_deref(),
        schedule: enumr.schedule.as_deref(),
        plans: &plans,
        remaining: &remaining,
        fanouts: &fanouts,
        is_output: &is_output,
        injector: &injector,
        shared_bound: &shared_bound,
        src_bounds: src_bounds.as_deref(),
        nogoods,
        arc_bounds,
    };

    let (tx, rx) = mpsc::channel::<(usize, Vec<TruePath>)>();
    let result = crossbeam::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for local in locals {
            let tx = tx.clone();
            let ctx = &ctx;
            let stealers = &stealers;
            handles.push(s.spawn(move |_| worker_loop(ctx, local, stealers, tx)));
        }
        drop(tx);

        // Reorder window: release task buffers to the sink strictly in
        // serial (seq) order.
        let mut pending: BTreeMap<usize, Vec<TruePath>> = BTreeMap::new();
        let mut next = 0usize;
        let mut received = 0usize;
        while received < n_tasks {
            let Ok((seq, paths)) = rx.recv() else {
                // Senders gone early: a worker died; the scope will
                // re-raise its panic after the joins below.
                break;
            };
            received += 1;
            pending.insert(seq, paths);
            while let Some(batch) = pending.remove(&next) {
                for p in batch {
                    sink(p);
                }
                next += 1;
            }
        }
        for (_, batch) in std::mem::take(&mut pending) {
            for p in batch {
                sink(p);
            }
        }

        let mut total = EnumerationStats::default();
        for h in handles {
            match h.join() {
                Ok(ws) => total.merge(&ws),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        total
    });
    match result {
        Ok(stats) => stats,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Claims the next task: own deque first, then a batch from the global
/// injector, then stealing from a sibling. `steals` counts only the
/// sibling-deque case — the work-stealing events proper.
fn next_task(
    local: &Worker<RootTask>,
    injector: &Injector<RootTask>,
    stealers: &[Stealer<RootTask>],
    steals: &sta_obs::Counter,
) -> Option<RootTask> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    for s in stealers {
        loop {
            match s.steal() {
                Steal::Success(t) => {
                    steals.inc();
                    return Some(t);
                }
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

fn worker_loop(
    ctx: &WorkerCtx<'_>,
    local: Worker<RootTask>,
    stealers: &[Stealer<RootTask>],
    tx: mpsc::Sender<(usize, Vec<TruePath>)>,
) -> EnumerationStats {
    use std::cell::RefCell;
    use std::rc::Rc;

    // The task buffer the Search sink writes into; drained after every
    // task and shipped to the coordinator with the task's sequence number.
    let buf: Rc<RefCell<Vec<TruePath>>> = Rc::new(RefCell::new(Vec::new()));
    let buf_sink = Rc::clone(&buf);
    let mut sink = move |p: TruePath| buf_sink.borrow_mut().push(p);
    let mut search = Search {
        nl: ctx.nl,
        lib: ctx.lib,
        tlib: ctx.tlib,
        cfg: ctx.cfg,
        kernel: ctx.kernel,
        eng: ImplicationEngine::new(ctx.nl, ctx.lib),
        remaining: ctx.remaining.clone(),
        fanouts: ctx.fanouts.to_vec(),
        is_output: ctx.is_output.to_vec(),
        reach: Vec::new(),
        obligations: Vec::new(),
        delays_r: Vec::new(),
        delays_f: Vec::new(),
        sink: &mut sink,
        emitted: 0,
        worst_arrivals: Vec::new(),
        threshold: f64::NEG_INFINITY,
        shared_bound: Some(ctx.shared_bound),
        justify_cache: JustifyCache::new(),
        model_cache: ModelCache::new(),
        side_scratch: Vec::new(),
        justify_todo: Vec::new(),
        justify_scratch: JustifyScratch::default(),
        filter: ctx.schedule.map(crate::bitsim::BitsimFilter::new),
        learn_eng: ctx
            .cfg
            .learning
            .then(|| ImplicationEngine::new(ctx.nl, ctx.lib)),
        nogoods: ctx.nogoods.clone(),
        nogood_view: NogoodView::new(),
        cone_scratch: ConeScratch::default(),
        learn_todo: Vec::new(),
        learn_scratch: JustifyScratch::default(),
        arc_bounds: ctx.arc_bounds.clone(),
        tight_rem: None,
        stats: EnumerationStats::default(),
        progress: ctx.cfg.obs.progress(),
        justify_hist: ctx.cfg.obs.histogram("justify.decisions_per_call"),
        path_len_hist: ctx.cfg.obs.histogram("enumerate.path_gates"),
        bound_updates: ctx.cfg.obs.counter("enumerate.bound_updates"),
    };
    // Per-worker scheduling counters; the metric handles are fetched once
    // here and bumped lock-free inside the task loop.
    let steals = ctx.cfg.obs.counter("parallel.steals");
    let tasks_done = ctx.cfg.obs.counter("parallel.tasks");
    let mut total = EnumerationStats::default();
    let mut current_src: Option<usize> = None;
    let mut mask = Mask::NONE;
    // Path stacks live outside the task loop: one allocation per worker.
    let mut nodes: Vec<NetId> = Vec::new();
    let mut arcs: Vec<PathArc> = Vec::new();
    while let Some(task) = next_task(&local, ctx.injector, stealers, &steals) {
        tasks_done.inc();
        let plan = &ctx.plans[task.src];
        if current_src != Some(task.src) {
            // Install the per-source state: toggle deltas, the launched
            // transition (whose trail entries persist across this
            // source's tasks — each try_arc rolls back to its own mark),
            // and the reachability map.
            search.eng.reset();
            search.eng.set_toggles(Some(plan.deltas.clone()));
            let conflicts = search
                .eng
                .assign(plan.src, Dual::transition(false), Mask::BOTH);
            mask = Mask::BOTH.minus(conflicts);
            search.reach.clone_from(&plan.reach);
            search.tight_rem.clone_from(&plan.tight_rem);
            search.obligations.clear();
            search.delays_r.clear();
            search.delays_f.clear();
            if let Some(bounds) = ctx.src_bounds {
                // Threshold isolation: forget the previous source's
                // admissions and publish/read bounds through this
                // source's own atomic.
                search.threshold = f64::NEG_INFINITY;
                search.worst_arrivals.clear();
                search.shared_bound = Some(&bounds[task.src]);
            }
            current_src = Some(task.src);
        }
        // Budgets apply per root task (see the module docs).
        search.stats = EnumerationStats::default();
        search.emitted = 0;
        let timing = PolTimings::launch(ctx.cfg.input_slew);
        // Mirror of the serial root-node prune check (preferring the
        // per-source tightened bound, exactly like `dfs_inner`).
        let prune = match search.tight_rem.as_ref().or(search.remaining.as_ref()) {
            Some(rem) => {
                let threshold = search.effective_threshold();
                ctx.cfg.n_worst.is_some()
                    && threshold > f64::NEG_INFINITY
                    && timing.worst_alive(mask) + rem[plan.src.index()] < threshold
            }
            None => false,
        };
        if prune {
            search.stats.pruned += 1;
        } else if mask.any() {
            nodes.clear();
            nodes.push(plan.src);
            arcs.clear();
            search.try_arc(
                task.gate,
                task.pin,
                task.vector,
                false,
                mask,
                timing,
                &mut nodes,
                &mut arcs,
            );
        }
        total.merge(&search.stats);
        let paths = std::mem::take(&mut *buf.borrow_mut());
        if tx.send((task.seq, paths)).is_err() {
            break;
        }
    }
    total.justify_cache_hits = search.justify_cache.hits;
    total.model_cache_hits = search.model_cache.hits;
    if let Some(f) = &search.filter {
        total.bitsim_words = f.words;
        total.bitsim_lanes_filtered = f.lanes_filtered;
        total.bitsim_exact_calls_saved = f.exact_calls_saved;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_encoding_round_trips_and_orders() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-12,
            3.25,
            1e300,
            f64::INFINITY,
        ];
        for &x in &samples {
            assert_eq!(decode_bound(encode_bound(x)).to_bits(), x.to_bits(), "{x}");
        }
        for w in samples.windows(2) {
            assert!(
                encode_bound(w[0]) <= encode_bound(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        // Strictly monotone away from the −0.0/0.0 pair.
        assert!(encode_bound(-2.5) < encode_bound(3.25));
    }

    #[test]
    fn fetch_max_implements_float_max() {
        let bound = AtomicU64::new(encode_bound(f64::NEG_INFINITY));
        for x in [-3.0, 7.5, 2.0, 7.0] {
            bound.fetch_max(encode_bound(x), std::sync::atomic::Ordering::Relaxed);
        }
        let got = decode_bound(bound.load(std::sync::atomic::Ordering::Relaxed));
        assert_eq!(got, 7.5);
    }
}
