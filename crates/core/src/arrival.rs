//! Classic levelized static timing analysis.
//!
//! Used in two places: as the pruning bound of the N-worst true-path
//! search (`remaining_bound`) and as stage one of the commercial-style
//! baseline (structural arrival times, no sensitization).

use sta_cells::{Corner, Edge, Library};
use sta_charlib::{CompiledCorner, TimingLibrary};
use sta_logic::Toggle;
use sta_netlist::{CellId, GateId, GateKind, Netlist};

/// Per-net static timing quantities.
#[derive(Clone, Debug, PartialEq)]
pub struct StaticTiming {
    /// Worst-case structural arrival time per net, ps (0 at PIs).
    pub arrival: Vec<f64>,
    /// Worst-case structural delay from each net to any primary output, ps
    /// (0 at POs without fanout).
    pub remaining: Vec<f64>,
}

/// The largest modelled delay of any arc through (`cell`, `pin`): max over
/// sensitization vectors and edges of the largest characterization sample.
/// A conservative per-arc bound for structural analyses.
pub fn arc_delay_bound(tlib: &TimingLibrary, cell: sta_netlist::CellId, pin: u8) -> f64 {
    let ct = tlib.cell(cell);
    (0..ct.num_vectors(pin))
        .map(|v| {
            let var = ct.variant(pin, v);
            var.rise.max_sample_delay.max(var.fall.max_sample_delay)
        })
        .fold(0.0, f64::max)
}

/// Computes structural arrival and remaining-delay bounds with worst-case
/// per-arc delays evaluated at `default_slew` (plus the tabulated sample
/// maxima as a safety net) and the real per-net fanout loads.
///
/// `margin` scales every arc bound (≥ 1.0 recommended — the bound is used
/// to prune the N-worst search and should stay conservative with respect
/// to slew effects the static pass cannot see).
///
/// # Panics
///
/// Panics if the netlist contains unmapped primitive gates or a cycle.
pub fn static_bounds(
    nl: &Netlist,
    tlib: &TimingLibrary,
    corner: Corner,
    default_slew: f64,
    margin: f64,
) -> StaticTiming {
    bounds_with(nl, tlib, margin, |cell, pin, v, edge, fo| {
        tlib.cell(cell)
            .variant(pin, v)
            .for_edge(edge)
            .eval(fo, default_slew, corner)
            .0
    })
}

/// [`static_bounds`] evaluated through a corner-compiled kernel table.
/// Bit-identical to the interpreted bounds at the kernel's corner, so the
/// N-worst pruning decisions of a compiled run match an interpreted run
/// exactly.
pub fn static_bounds_compiled(
    nl: &Netlist,
    tlib: &TimingLibrary,
    kernel: &CompiledCorner,
    default_slew: f64,
    margin: f64,
) -> StaticTiming {
    bounds_with(nl, tlib, margin, |cell, pin, v, edge, fo| {
        kernel
            .eval(kernel.arc_id(cell, pin, v), edge, fo, default_slew)
            .0
    })
}

fn bounds_with(
    nl: &Netlist,
    tlib: &TimingLibrary,
    margin: f64,
    mut arc_delay: impl FnMut(CellId, u8, usize, Edge, f64) -> f64,
) -> StaticTiming {
    let order = nl.topo_gates();
    assert_eq!(order.len(), nl.num_gates(), "netlist has a cycle");
    // Per-gate worst arc delay (max over input pins, vectors, edges).
    let gate_bound: Vec<f64> = nl
        .gate_ids()
        .map(|g| {
            let gate = nl.gate(g);
            let cell = match gate.kind() {
                GateKind::Cell(c) => c,
                GateKind::Prim(op) => panic!("static_bounds on unmapped primitive {op}"),
            };
            let fo = tlib.equivalent_fanout(nl, gate.output(), cell);
            let ct = tlib.cell(cell);
            let mut worst: f64 = 0.0;
            for pin in 0..gate.fanin() as u8 {
                for v in 0..ct.num_vectors(pin) {
                    for edge in Edge::BOTH {
                        worst = worst.max(arc_delay(cell, pin, v, edge, fo));
                    }
                }
                worst = worst.max(arc_delay_bound(tlib, cell, pin));
            }
            worst * margin
        })
        .collect();

    let mut arrival = vec![0.0; nl.num_nets()];
    for &g in &order {
        let gate = nl.gate(g);
        let worst_in = gate
            .inputs()
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0, f64::max);
        arrival[gate.output().index()] = worst_in + gate_bound[g.index()];
    }

    let mut remaining = vec![0.0; nl.num_nets()];
    for &g in order.iter().rev() {
        let gate = nl.gate(g);
        let through = remaining[gate.output().index()] + gate_bound[g.index()];
        for n in gate.inputs() {
            let slot = &mut remaining[n.index()];
            if through > *slot {
                *slot = through;
            }
        }
    }
    StaticTiming { arrival, remaining }
}

/// Conservative per-(gate, pin, vector) arc-delay upper bounds, ps —
/// the per-arc refinement of the per-gate maximum inside
/// [`static_bounds`]. Computed once per run and shared read-only by
/// every worker; feeds the dominance cut of the N-worst search (see
/// `sta_core::learn` and `enumerate`).
#[derive(Clone, Debug)]
pub struct ArcBounds {
    /// `per_gate[gate][pin][vector]`, already scaled by the margin.
    per_gate: Vec<Vec<Vec<f64>>>,
}

impl ArcBounds {
    /// The bound of one arc, ps.
    #[inline]
    pub fn get(&self, gate: GateId, pin: u8, vector: usize) -> f64 {
        self.per_gate[gate.index()][pin as usize][vector]
    }
}

/// Margin applied to the slew-swept per-arc bounds ([`arc_bounds`]).
/// The sweep evaluates the *model itself* on a dense fixed grid of the
/// clamped slew domain, so the only slack the margin must cover is
/// polynomial wiggle between adjacent sample points — a few percent
/// dwarfs it for the low-order fitted models. Contrast
/// `EnumerationConfig::prune_margin`, which also has to absorb the slew
/// effects the single-point [`static_bounds`] evaluation cannot see.
pub const ARC_SWEEP_MARGIN: f64 = 1.02;

/// Fixed slew sample points of the per-arc bound sweep: dense over the
/// characterized range (the models clamp their inputs to the fitted box,
/// so beyond the grid edge they hold their boundary value) plus sparse
/// log-spaced points and one effectively-infinite probe covering wider
/// grids. Fixed points keep the compiled and interpreted bound tables
/// bit-identical — both evaluators agree bitwise at any single point.
const SLEW_SWEEP: [f64; 48] = [
    0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0, 225.0, 250.0, 275.0, 300.0, 325.0,
    350.0, 375.0, 400.0, 425.0, 450.0, 475.0, 500.0, 525.0, 550.0, 575.0, 600.0, 625.0, 650.0,
    675.0, 700.0, 725.0, 750.0, 775.0, 800.0, 825.0, 850.0, 875.0, 900.0, 925.0, 950.0, 975.0,
    1000.0, 1250.0, 1600.0, 2000.0, 3000.0, 5000.0, 10000.0, 1e12,
];

/// Per-arc delay bounds: for every (pin, vector, edge) the model delay is
/// maximized over the arc's *real* fanout load and the full clamped slew
/// domain ([`SLEW_SWEEP`]), then scaled by `margin`. Much tighter than
/// the [`static_bounds`] recipe — that one folds in the grid-global
/// tabulated sample maximum, which a low-fanout gate never approaches —
/// while still upper-bounding every delay the search can compute for the
/// arc: the search evaluates the same clamped model at the same fanout,
/// only the slew differs, and the sweep covers the whole slew range.
///
/// # Panics
///
/// Panics if the netlist contains unmapped primitive gates.
pub fn arc_bounds(
    nl: &Netlist,
    tlib: &TimingLibrary,
    corner: Corner,
    default_slew: f64,
    margin: f64,
) -> ArcBounds {
    arc_bounds_with(
        nl,
        tlib,
        default_slew,
        margin,
        |cell, pin, v, edge, fo, slew| {
            tlib.cell(cell)
                .variant(pin, v)
                .for_edge(edge)
                .eval(fo, slew, corner)
                .0
        },
    )
}

/// [`arc_bounds`] evaluated through a corner-compiled kernel table —
/// bit-identical to the interpreted bounds at the kernel's corner, so
/// the dominance cut never depends on the kernel setting.
pub fn arc_bounds_compiled(
    nl: &Netlist,
    tlib: &TimingLibrary,
    kernel: &CompiledCorner,
    default_slew: f64,
    margin: f64,
) -> ArcBounds {
    arc_bounds_with(
        nl,
        tlib,
        default_slew,
        margin,
        |cell, pin, v, edge, fo, slew| kernel.eval(kernel.arc_id(cell, pin, v), edge, fo, slew).0,
    )
}

fn arc_bounds_with(
    nl: &Netlist,
    tlib: &TimingLibrary,
    default_slew: f64,
    margin: f64,
    mut arc_delay: impl FnMut(CellId, u8, usize, Edge, f64, f64) -> f64,
) -> ArcBounds {
    let per_gate = nl
        .gate_ids()
        .map(|g| {
            let gate = nl.gate(g);
            let cell = match gate.kind() {
                GateKind::Cell(c) => c,
                GateKind::Prim(op) => panic!("arc_bounds on unmapped primitive {op}"),
            };
            let fo = tlib.equivalent_fanout(nl, gate.output(), cell);
            let ct = tlib.cell(cell);
            (0..gate.fanin() as u8)
                .map(|pin| {
                    (0..ct.num_vectors(pin))
                        .map(|v| {
                            let mut worst = f64::NEG_INFINITY;
                            for edge in Edge::BOTH {
                                worst = worst.max(arc_delay(cell, pin, v, edge, fo, default_slew));
                                for &slew in &SLEW_SWEEP {
                                    worst = worst.max(arc_delay(cell, pin, v, edge, fo, slew));
                                }
                            }
                            worst * margin
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    ArcBounds { per_gate }
}

/// Two-sided delay and slew bounds of one timing arc, ps — the interval
/// refinement of [`ArcBounds`]: where the dominance cut only needs an
/// upper delay bound, the abstract interpreter in `sta-lint` needs both
/// sides of both quantities to propagate sound `[lo, hi]` envelopes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArcInterval {
    /// Smallest swept delay, ps (margin-widened downward).
    pub delay_lo: f64,
    /// Largest swept delay, ps (margin-widened upward).
    pub delay_hi: f64,
    /// Smallest swept output slew, ps (margin-widened downward).
    pub slew_lo: f64,
    /// Largest swept output slew, ps (margin-widened upward).
    pub slew_hi: f64,
}

/// Per-(gate, pin, vector) two-sided arc intervals — the table the
/// `sta-lint` interval abstract interpreter consumes. Built by the same
/// fixed [`SLEW_SWEEP`] as [`arc_bounds`], so the interpreted and
/// compiled tables are bit-identical at the kernel's corner.
#[derive(Clone, Debug)]
pub struct ArcIntervals {
    /// `per_gate[gate][pin][vector]`, already margin-widened.
    per_gate: Vec<Vec<Vec<ArcInterval>>>,
}

impl ArcIntervals {
    /// The interval of one arc.
    #[inline]
    pub fn get(&self, gate: GateId, pin: u8, vector: usize) -> ArcInterval {
        self.per_gate[gate.index()][pin as usize][vector]
    }

    /// Number of gates covered (every gate of the netlist).
    pub fn num_gates(&self) -> usize {
        self.per_gate.len()
    }

    /// Number of characterized vectors of one (gate, pin) arc family.
    #[inline]
    pub fn num_vectors(&self, gate: GateId, pin: u8) -> usize {
        self.per_gate[gate.index()][pin as usize].len()
    }
}

/// Two-sided per-arc delay/slew intervals: for every (pin, vector) the
/// model is evaluated over both edges and the full swept slew domain at
/// the arc's real fanout, and the min/max of delay and output slew are
/// kept. The raw extrema are then widened *symmetrically* by
/// `(margin - 1) * scale` where `scale = max(|min|, |max|)` — unlike the
/// multiplicative widening of [`arc_bounds`], which is unsound for a
/// lower bound whose minimum sits near zero while the function swings
/// much larger between grid points.
///
/// # Panics
///
/// Panics if the netlist contains unmapped primitive gates.
pub fn arc_intervals(
    nl: &Netlist,
    tlib: &TimingLibrary,
    corner: Corner,
    default_slew: f64,
    margin: f64,
) -> ArcIntervals {
    arc_intervals_with(
        nl,
        tlib,
        default_slew,
        margin,
        |cell, pin, v, edge, fo, slew| {
            tlib.cell(cell)
                .variant(pin, v)
                .for_edge(edge)
                .eval(fo, slew, corner)
        },
    )
}

/// [`arc_intervals`] evaluated through a corner-compiled kernel table —
/// bit-identical to the interpreted intervals at the kernel's corner, so
/// audit verdicts never depend on the kernel setting.
pub fn arc_intervals_compiled(
    nl: &Netlist,
    tlib: &TimingLibrary,
    kernel: &CompiledCorner,
    default_slew: f64,
    margin: f64,
) -> ArcIntervals {
    arc_intervals_with(
        nl,
        tlib,
        default_slew,
        margin,
        |cell, pin, v, edge, fo, slew| kernel.eval(kernel.arc_id(cell, pin, v), edge, fo, slew),
    )
}

fn arc_intervals_with(
    nl: &Netlist,
    tlib: &TimingLibrary,
    default_slew: f64,
    margin: f64,
    mut arc_eval: impl FnMut(CellId, u8, usize, Edge, f64, f64) -> (f64, f64),
) -> ArcIntervals {
    // Symmetric scale-based widening: sound for both interval ends even
    // when an extremum sits near zero (multiplying a tiny minimum by a
    // margin < 1 would barely move it while the true inter-grid value
    // can undershoot by a fraction of the function's magnitude).
    fn widen(lo: f64, hi: f64, margin: f64) -> (f64, f64) {
        let pad = (margin - 1.0) * lo.abs().max(hi.abs());
        (lo - pad, hi + pad)
    }
    let per_gate = nl
        .gate_ids()
        .map(|g| {
            let gate = nl.gate(g);
            let cell = match gate.kind() {
                GateKind::Cell(c) => c,
                GateKind::Prim(op) => panic!("arc_intervals on unmapped primitive {op}"),
            };
            let fo = tlib.equivalent_fanout(nl, gate.output(), cell);
            let ct = tlib.cell(cell);
            (0..gate.fanin() as u8)
                .map(|pin| {
                    (0..ct.num_vectors(pin))
                        .map(|v| {
                            let mut d_lo = f64::INFINITY;
                            let mut d_hi = f64::NEG_INFINITY;
                            let mut s_lo = f64::INFINITY;
                            let mut s_hi = f64::NEG_INFINITY;
                            let mut take = |(d, s): (f64, f64)| {
                                d_lo = d_lo.min(d);
                                d_hi = d_hi.max(d);
                                s_lo = s_lo.min(s);
                                s_hi = s_hi.max(s);
                            };
                            for edge in Edge::BOTH {
                                take(arc_eval(cell, pin, v, edge, fo, default_slew));
                                for &slew in &SLEW_SWEEP {
                                    take(arc_eval(cell, pin, v, edge, fo, slew));
                                }
                            }
                            let (delay_lo, delay_hi) = widen(d_lo, d_hi, margin);
                            let (slew_lo, slew_hi) = widen(s_lo, s_hi, margin);
                            ArcInterval {
                                delay_lo,
                                delay_hi,
                                slew_lo,
                                slew_hi,
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    ArcIntervals { per_gate }
}

/// Per-source tightened remaining-delay bound: like the `remaining` half
/// of [`static_bounds`], but restricted to arcs whose side requirements
/// do not contradict the launch source's toggle analysis (the same
/// necessary condition `sensitizable_reach` uses) and taken per
/// (pin, vector) from `bounds` instead of the per-gate maximum.
///
/// `rem[net]` therefore upper-bounds the delay of *any true sensitizable
/// suffix* from `net` to a primary output under this source: every arc a
/// true path traverses must assign its side values without a toggle
/// conflict, so per-vector arcs excluded here can never appear on one.
/// Nets with no such suffix get `-inf` (the search never continues into
/// them unless they are outputs, which carry `0`).
pub fn tightened_remaining(
    nl: &Netlist,
    lib: &Library,
    bounds: &ArcBounds,
    deltas: &[Toggle],
    is_output: &[bool],
) -> Vec<f64> {
    let mut rem = vec![f64::NEG_INFINITY; nl.num_nets()];
    for (i, &po) in is_output.iter().enumerate() {
        if po {
            rem[i] = 0.0;
        }
    }
    let order = nl.topo_gates();
    for &g in order.iter().rev() {
        let gate = nl.gate(g);
        let out_rem = rem[gate.output().index()];
        if out_rem == f64::NEG_INFINITY {
            continue;
        }
        let cell_id = match gate.kind() {
            GateKind::Cell(c) => c,
            GateKind::Prim(op) => panic!("tightened_remaining on unmapped primitive {op}"),
        };
        let cell = lib.cell(cell_id);
        for pin in 0..gate.fanin() as u8 {
            let input = gate.inputs()[pin as usize];
            for (v_idx, sv) in cell.vectors_of(pin).iter().enumerate() {
                let ok = (0..gate.fanin() as u8).all(|p| {
                    p == pin
                        || sv.side_value(p).is_none()
                        || deltas[gate.inputs()[p as usize].index()] != Toggle::One
                });
                if !ok {
                    continue;
                }
                let cand = out_rem + bounds.get(g, pin, v_idx);
                if cand > rem[input.index()] {
                    rem[input.index()] = cand;
                }
            }
        }
    }
    rem
}

impl StaticTiming {
    /// The worst structural arrival over the primary outputs.
    pub fn worst_arrival(&self, nl: &Netlist) -> f64 {
        nl.outputs()
            .iter()
            .map(|o| self.arrival[o.index()])
            .fold(0.0, f64::max)
    }
}

/// Observability tap on a computed bound table: counts the computation and
/// publishes the worst structural arrival as a gauge. Side-state only —
/// the bounds themselves are untouched, so instrumented and plain runs
/// prune identically.
pub fn record_bounds_metrics(obs: &sta_obs::Observer, nl: &Netlist, timing: &StaticTiming) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter("arrival.bound_computations").inc();
    obs.gauge("arrival.structural_worst_ps")
        .set(timing.worst_arrival(nl));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::{Library, Technology};
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::GateKind;

    fn small_mapped() -> (Netlist, Library) {
        let lib = Library::standard();
        let inv = lib.cell_by_name("INV").unwrap().id();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Cell(inv), &[a], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(nand2), &[x, b], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(inv), &[y], None).unwrap();
        nl.mark_output(z);
        (nl, lib)
    }

    #[test]
    fn bounds_are_monotone_and_consistent() {
        let (nl, lib) = small_mapped();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let corner = Corner::nominal(&tech);
        let st = static_bounds(&nl, &tlib, corner, 60.0, 1.1);
        let z = nl.outputs()[0];
        let a = nl.inputs()[0];
        // Arrival grows along the chain; remaining shrinks.
        assert!(st.arrival[z.index()] > 0.0);
        assert_eq!(st.arrival[a.index()], 0.0);
        assert!(st.remaining[a.index()] >= st.arrival[z.index()] - 1e-9);
        assert_eq!(st.remaining[z.index()], 0.0);
        // Worst arrival at outputs equals arrival of z here.
        assert!((st.worst_arrival(&nl) - st.arrival[z.index()]).abs() < 1e-9);
        // arrival(PI) + remaining(PI) bounds the whole path.
        assert!(st.remaining[a.index()] >= st.worst_arrival(&nl) - 1e-9);
    }

    /// The per-source tightened remaining bound never exceeds the global
    /// structural one: it restricts the arc set and refines the per-gate
    /// maximum into per-vector bounds, both of which only shrink it.
    #[test]
    fn tightened_remaining_is_never_looser() {
        let (nl, lib) = small_mapped();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let corner = Corner::nominal(&tech);
        let st = static_bounds(&nl, &tlib, corner, 60.0, 1.25);
        let ab = arc_bounds(&nl, &tlib, corner, 60.0, 1.25);
        let mut is_output = vec![false; nl.num_nets()];
        for &o in nl.outputs() {
            is_output[o.index()] = true;
        }
        for &src in nl.inputs() {
            let deltas = sta_logic::toggle_analysis(&nl, &lib, src);
            let tight = tightened_remaining(&nl, &lib, &ab, &deltas, &is_output);
            for (i, &t) in tight.iter().enumerate() {
                if t.is_finite() {
                    assert!(
                        t <= st.remaining[i] + 1e-9,
                        "net {i}: tightened {t} > structural {}",
                        st.remaining[i]
                    );
                }
            }
        }
    }

    /// Per-arc bounds through the kernel table match the interpreted ones
    /// bitwise, so the dominance cut never depends on the kernel setting.
    #[test]
    fn compiled_arc_bounds_are_bit_identical() {
        let (nl, lib) = small_mapped();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let corner = Corner::nominal(&tech);
        let kernel = tlib.compile_corner(corner);
        let a = arc_bounds(&nl, &tlib, corner, 60.0, 1.25);
        let b = arc_bounds_compiled(&nl, &tlib, &kernel, 60.0, 1.25);
        for g in nl.gate_ids() {
            let gate = nl.gate(g);
            let cell = match gate.kind() {
                GateKind::Cell(c) => c,
                GateKind::Prim(_) => unreachable!(),
            };
            for pin in 0..gate.fanin() as u8 {
                for v in 0..tlib.cell(cell).num_vectors(pin) {
                    assert_eq!(a.get(g, pin, v).to_bits(), b.get(g, pin, v).to_bits());
                }
            }
        }
    }

    /// Compiled and interpreted two-sided interval tables agree bitwise,
    /// and every interval is well-formed with the delay upper bound under
    /// the same-margin `arc_bounds` ceiling.
    #[test]
    fn compiled_arc_intervals_are_bit_identical_and_well_formed() {
        let (nl, lib) = small_mapped();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let corner = Corner::nominal(&tech);
        let kernel = tlib.compile_corner(corner);
        let a = arc_intervals(&nl, &tlib, corner, 60.0, ARC_SWEEP_MARGIN);
        let b = arc_intervals_compiled(&nl, &tlib, &kernel, 60.0, ARC_SWEEP_MARGIN);
        let bounds = arc_bounds(&nl, &tlib, corner, 60.0, ARC_SWEEP_MARGIN);
        for g in nl.gate_ids() {
            let gate = nl.gate(g);
            let cell = match gate.kind() {
                GateKind::Cell(c) => c,
                GateKind::Prim(_) => unreachable!(),
            };
            for pin in 0..gate.fanin() as u8 {
                for v in 0..tlib.cell(cell).num_vectors(pin) {
                    let ia = a.get(g, pin, v);
                    let ib = b.get(g, pin, v);
                    assert_eq!(ia.delay_lo.to_bits(), ib.delay_lo.to_bits());
                    assert_eq!(ia.delay_hi.to_bits(), ib.delay_hi.to_bits());
                    assert_eq!(ia.slew_lo.to_bits(), ib.slew_lo.to_bits());
                    assert_eq!(ia.slew_hi.to_bits(), ib.slew_hi.to_bits());
                    assert!(ia.delay_lo <= ia.delay_hi);
                    assert!(ia.slew_lo <= ia.slew_hi);
                    // The interval hi pads symmetrically off the same raw
                    // maximum arc_bounds scales, so it can never exceed it
                    // for positive delays.
                    assert!(ia.delay_hi <= bounds.get(g, pin, v) + 1e-9);
                }
            }
        }
    }

    /// Kernel-table bounds match the interpreted ones bitwise, so pruning
    /// behaves identically in compiled and interpreted runs.
    #[test]
    fn compiled_bounds_are_bit_identical() {
        let (nl, lib) = small_mapped();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let corner = Corner::nominal(&tech);
        let kernel = tlib.compile_corner(corner);
        let st = static_bounds(&nl, &tlib, corner, 60.0, 1.1);
        let sc = static_bounds_compiled(&nl, &tlib, &kernel, 60.0, 1.1);
        for (a, b) in st.arrival.iter().zip(&sc.arrival) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in st.remaining.iter().zip(&sc.remaining) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
