//! Classic levelized static timing analysis.
//!
//! Used in two places: as the pruning bound of the N-worst true-path
//! search (`remaining_bound`) and as stage one of the commercial-style
//! baseline (structural arrival times, no sensitization).

use sta_cells::{Corner, Edge};
use sta_charlib::{CompiledCorner, TimingLibrary};
use sta_netlist::{CellId, GateKind, Netlist};

/// Per-net static timing quantities.
#[derive(Clone, Debug, PartialEq)]
pub struct StaticTiming {
    /// Worst-case structural arrival time per net, ps (0 at PIs).
    pub arrival: Vec<f64>,
    /// Worst-case structural delay from each net to any primary output, ps
    /// (0 at POs without fanout).
    pub remaining: Vec<f64>,
}

/// The largest modelled delay of any arc through (`cell`, `pin`): max over
/// sensitization vectors and edges of the largest characterization sample.
/// A conservative per-arc bound for structural analyses.
pub fn arc_delay_bound(tlib: &TimingLibrary, cell: sta_netlist::CellId, pin: u8) -> f64 {
    let ct = tlib.cell(cell);
    (0..ct.num_vectors(pin))
        .map(|v| {
            let var = ct.variant(pin, v);
            var.rise.max_sample_delay.max(var.fall.max_sample_delay)
        })
        .fold(0.0, f64::max)
}

/// Computes structural arrival and remaining-delay bounds with worst-case
/// per-arc delays evaluated at `default_slew` (plus the tabulated sample
/// maxima as a safety net) and the real per-net fanout loads.
///
/// `margin` scales every arc bound (≥ 1.0 recommended — the bound is used
/// to prune the N-worst search and should stay conservative with respect
/// to slew effects the static pass cannot see).
///
/// # Panics
///
/// Panics if the netlist contains unmapped primitive gates or a cycle.
pub fn static_bounds(
    nl: &Netlist,
    tlib: &TimingLibrary,
    corner: Corner,
    default_slew: f64,
    margin: f64,
) -> StaticTiming {
    bounds_with(nl, tlib, margin, |cell, pin, v, edge, fo| {
        tlib.cell(cell)
            .variant(pin, v)
            .for_edge(edge)
            .eval(fo, default_slew, corner)
            .0
    })
}

/// [`static_bounds`] evaluated through a corner-compiled kernel table.
/// Bit-identical to the interpreted bounds at the kernel's corner, so the
/// N-worst pruning decisions of a compiled run match an interpreted run
/// exactly.
pub fn static_bounds_compiled(
    nl: &Netlist,
    tlib: &TimingLibrary,
    kernel: &CompiledCorner,
    default_slew: f64,
    margin: f64,
) -> StaticTiming {
    bounds_with(nl, tlib, margin, |cell, pin, v, edge, fo| {
        kernel
            .eval(kernel.arc_id(cell, pin, v), edge, fo, default_slew)
            .0
    })
}

fn bounds_with(
    nl: &Netlist,
    tlib: &TimingLibrary,
    margin: f64,
    mut arc_delay: impl FnMut(CellId, u8, usize, Edge, f64) -> f64,
) -> StaticTiming {
    let order = nl.topo_gates();
    assert_eq!(order.len(), nl.num_gates(), "netlist has a cycle");
    // Per-gate worst arc delay (max over input pins, vectors, edges).
    let gate_bound: Vec<f64> = nl
        .gate_ids()
        .map(|g| {
            let gate = nl.gate(g);
            let cell = match gate.kind() {
                GateKind::Cell(c) => c,
                GateKind::Prim(op) => panic!("static_bounds on unmapped primitive {op}"),
            };
            let fo = tlib.equivalent_fanout(nl, gate.output(), cell);
            let ct = tlib.cell(cell);
            let mut worst: f64 = 0.0;
            for pin in 0..gate.fanin() as u8 {
                for v in 0..ct.num_vectors(pin) {
                    for edge in Edge::BOTH {
                        worst = worst.max(arc_delay(cell, pin, v, edge, fo));
                    }
                }
                worst = worst.max(arc_delay_bound(tlib, cell, pin));
            }
            worst * margin
        })
        .collect();

    let mut arrival = vec![0.0; nl.num_nets()];
    for &g in &order {
        let gate = nl.gate(g);
        let worst_in = gate
            .inputs()
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0, f64::max);
        arrival[gate.output().index()] = worst_in + gate_bound[g.index()];
    }

    let mut remaining = vec![0.0; nl.num_nets()];
    for &g in order.iter().rev() {
        let gate = nl.gate(g);
        let through = remaining[gate.output().index()] + gate_bound[g.index()];
        for n in gate.inputs() {
            let slot = &mut remaining[n.index()];
            if through > *slot {
                *slot = through;
            }
        }
    }
    StaticTiming { arrival, remaining }
}

impl StaticTiming {
    /// The worst structural arrival over the primary outputs.
    pub fn worst_arrival(&self, nl: &Netlist) -> f64 {
        nl.outputs()
            .iter()
            .map(|o| self.arrival[o.index()])
            .fold(0.0, f64::max)
    }
}

/// Observability tap on a computed bound table: counts the computation and
/// publishes the worst structural arrival as a gauge. Side-state only —
/// the bounds themselves are untouched, so instrumented and plain runs
/// prune identically.
pub fn record_bounds_metrics(obs: &sta_obs::Observer, nl: &Netlist, timing: &StaticTiming) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter("arrival.bound_computations").inc();
    obs.gauge("arrival.structural_worst_ps")
        .set(timing.worst_arrival(nl));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::{Library, Technology};
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::GateKind;

    fn small_mapped() -> (Netlist, Library) {
        let lib = Library::standard();
        let inv = lib.cell_by_name("INV").unwrap().id();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Cell(inv), &[a], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(nand2), &[x, b], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(inv), &[y], None).unwrap();
        nl.mark_output(z);
        (nl, lib)
    }

    #[test]
    fn bounds_are_monotone_and_consistent() {
        let (nl, lib) = small_mapped();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let corner = Corner::nominal(&tech);
        let st = static_bounds(&nl, &tlib, corner, 60.0, 1.1);
        let z = nl.outputs()[0];
        let a = nl.inputs()[0];
        // Arrival grows along the chain; remaining shrinks.
        assert!(st.arrival[z.index()] > 0.0);
        assert_eq!(st.arrival[a.index()], 0.0);
        assert!(st.remaining[a.index()] >= st.arrival[z.index()] - 1e-9);
        assert_eq!(st.remaining[z.index()], 0.0);
        // Worst arrival at outputs equals arrival of z here.
        assert!((st.worst_arrival(&nl) - st.arrival[z.index()]).abs() < 1e-9);
        // arrival(PI) + remaining(PI) bounds the whole path.
        assert!(st.remaining[a.index()] >= st.worst_arrival(&nl) - 1e-9);
    }

    /// Kernel-table bounds match the interpreted ones bitwise, so pruning
    /// behaves identically in compiled and interpreted runs.
    #[test]
    fn compiled_bounds_are_bit_identical() {
        let (nl, lib) = small_mapped();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let corner = Corner::nominal(&tech);
        let kernel = tlib.compile_corner(corner);
        let st = static_bounds(&nl, &tlib, corner, 60.0, 1.1);
        let sc = static_bounds_compiled(&nl, &tlib, &kernel, 60.0, 1.1);
        for (a, b) in st.arrival.iter().zip(&sc.arrival) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in st.remaining.iter().zip(&sc.remaining) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
