//! Single-pass sensitization-aware true-path enumeration (paper §IV.B).
//!
//! The algorithm starts at a circuit input and advances node to node. For
//! every fanout gate and every sensitization vector of the traversed pin it
//! saves the process state (an implication-trail mark), assigns the
//! vector's side values, propagates implications forward through the whole
//! circuit (early conflict detection with semi-undetermined values), and
//! checks that the accumulated requirements are justifiable from the
//! primary inputs. On a conflict all paths sharing the current sub-path are
//! discarded and the search jumps back to the last saved state. Reaching an
//! output emits a [`TruePath`] carrying a witness input vector and the
//! polynomial-model delay accumulated *during* the traversal — the
//! "single-pass" property: no second sensitization step is ever needed.
//!
//! Both launch polarities are traced simultaneously through the dual-value
//! logic system (`sta-logic`), so each path is traversed once.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use serde::Serialize;
use sta_cells::{Corner, Edge, Library, Polarity};
use sta_charlib::{CompiledCorner, ModelCache, TimingLibrary};
use sta_logic::{toggle_analysis, Dual, ImplicationEngine, Mask, Schedule, Toggle, TriVal, V9};

use crate::bitsim::BitsimFilter;
use crate::justify::{JustifyBudget, JustifyCache, JustifyOutcome, JustifyScratch};
use sta_netlist::{GateId, GateKind, NetId, Netlist};

use crate::arrival::{static_bounds, ArcBounds};
use crate::learn::{self, ConeScratch, NogoodKey, NogoodStore, NogoodView};
use crate::path::{LaunchTiming, PathArc, PiValue, TruePath};

/// Configuration of a true-path enumeration run.
#[derive(Clone, Debug)]
pub struct EnumerationConfig {
    /// Operating corner for delay evaluation.
    pub corner: Corner,
    /// Transition time applied at the primary inputs, ps.
    pub input_slew: f64,
    /// Keep only the N worst paths and prune the search with static
    /// bounds; `None` enumerates everything.
    pub n_worst: Option<usize>,
    /// Safety margin of the static pruning bound (only used with
    /// `n_worst`).
    pub prune_margin: f64,
    /// Abort the run after this many search decisions (0 = unlimited).
    /// When hit, [`EnumerationStats::truncated`] is set.
    pub max_decisions: u64,
    /// Stop after this many emitted paths (safety valve for pathological
    /// circuits).
    pub max_paths: Option<usize>,
    /// Effort cap per justification call (0 = unlimited). Refutations of
    /// unsatisfiable requirement sets over reconvergent XOR logic are
    /// exponential; when a call exceeds this many candidate decisions the
    /// branch is dropped and counted in
    /// [`EnumerationStats::justify_aborts`].
    pub justify_decision_limit: u64,
    /// Worker threads for the enumeration (1 = the serial engine). With
    /// more than one thread the search roots — (primary input, launch
    /// gate, sensitization vector) triples — are distributed over a
    /// work-stealing pool; the emitted path set of
    /// [`PathEnumerator::run`] is identical to the serial one at any
    /// thread count (see the `parallel` module). `max_decisions` /
    /// `max_paths` budgets apply per root task rather than globally in
    /// parallel mode.
    pub threads: usize,
    /// Fold the timing library into a [`CompiledCorner`] kernel table at
    /// setup and evaluate delays through it (bit-identical to the
    /// interpreted models — see `sta_charlib::kernel`). Disable to force
    /// the interpreted `ModelCache` path, e.g. to time the two against
    /// each other.
    pub compile_kernels: bool,
    /// Pre-filter justification branch candidates through the 64-lane
    /// bit-parallel forward simulation (`sta_logic::bitsim`) before they
    /// reach the exact implication engine. Refutation-only: the emitted
    /// path set and every certificate byte are identical either way (see
    /// `sta_core::bitsim`); disable to time the exact engine alone.
    pub bitsim: bool,
    /// Conflict-driven nogood learning plus the per-source dominance cut
    /// (see `sta_core::learn`). Refutation-only and bound-safe: the
    /// emitted path set and every certificate byte are identical either
    /// way whenever the global `max_decisions` budget does not bite
    /// (skipped refutations spend no decisions, so a budget-truncated
    /// run can truncate at a different point). Disable to time the
    /// unpruned search.
    pub learning: bool,
    /// Restricts the run to a subset of the primary inputs: entry `i`
    /// gates the source at position `i` of `Netlist::inputs()`. `None`
    /// runs every source. The paths emitted for an enabled source are
    /// identical to what a run over all sources emits for it *when
    /// [`EnumerationConfig::per_source_n_worst`] isolates the admission
    /// threshold* (or in full enumeration) — the property the ECO
    /// incremental re-analysis relies on (see `sta_core::eco`).
    pub source_filter: Option<Arc<Vec<bool>>>,
    /// Isolate the N-worst admission threshold per source: the threshold
    /// and admitted-arrival set reset at every source switch (serial) and
    /// the shared bound is per source (parallel), so each source's
    /// emitted superset contains its own N worst paths and is independent
    /// of which other sources run. Costs pruning power on multi-source
    /// runs; the point is cacheability, not speed.
    pub per_source_n_worst: bool,
    /// Observability handle. Disabled by default; when enabled the run
    /// records phase spans, per-worker metrics and (if installed) progress
    /// counters. Observation is strictly read-only with respect to the
    /// search — the emitted path set is byte-identical either way — and
    /// the field is ignored by `PartialEq`.
    pub obs: sta_obs::Observer,
}

/// Configuration equality for tests and memo keys: every *analysis*
/// parameter participates; the observer (which cannot influence results)
/// does not.
impl PartialEq for EnumerationConfig {
    fn eq(&self, other: &Self) -> bool {
        self.corner == other.corner
            && self.input_slew == other.input_slew
            && self.n_worst == other.n_worst
            && self.prune_margin == other.prune_margin
            && self.max_decisions == other.max_decisions
            && self.max_paths == other.max_paths
            && self.justify_decision_limit == other.justify_decision_limit
            && self.threads == other.threads
            && self.compile_kernels == other.compile_kernels
            && self.bitsim == other.bitsim
            && self.learning == other.learning
            && self.source_filter == other.source_filter
            && self.per_source_n_worst == other.per_source_n_worst
    }
}

impl EnumerationConfig {
    /// A reasonable default at the given corner: 60 ps input slew, full
    /// enumeration, 50 M decision budget.
    pub fn new(corner: Corner) -> Self {
        EnumerationConfig {
            corner,
            input_slew: 60.0,
            n_worst: None,
            prune_margin: 1.25,
            max_decisions: 50_000_000,
            max_paths: None,
            justify_decision_limit: 20_000,
            threads: 1,
            compile_kernels: true,
            bitsim: true,
            learning: true,
            source_filter: None,
            per_source_n_worst: false,
            obs: sta_obs::Observer::disabled(),
        }
    }

    /// Restricts the run to the N worst paths (enables pruning).
    pub fn with_n_worst(mut self, n: usize) -> Self {
        self.n_worst = Some(n);
        self
    }

    /// Sets the worker thread count (values below 1 mean serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the corner-compiled kernel table (on by
    /// default).
    pub fn with_compiled_kernels(mut self, on: bool) -> Self {
        self.compile_kernels = on;
        self
    }

    /// Enables or disables the bit-parallel justification pre-filter (on
    /// by default). Never changes what the run computes.
    pub fn with_bitsim(mut self, on: bool) -> Self {
        self.bitsim = on;
        self
    }

    /// Enables or disables nogood learning and the dominance cut (on by
    /// default). Never changes what the run computes (see
    /// [`EnumerationConfig::learning`]).
    pub fn with_learning(mut self, on: bool) -> Self {
        self.learning = on;
        self
    }

    /// Attaches an observability handle (see `sta-obs`). Never changes
    /// what the run computes.
    pub fn with_observer(mut self, obs: sta_obs::Observer) -> Self {
        self.obs = obs;
        self
    }

    /// Restricts the run to the sources whose entry (by position in
    /// `Netlist::inputs()`) is `true`; see
    /// [`EnumerationConfig::source_filter`].
    ///
    /// # Panics
    ///
    /// The run panics if the filter length differs from the input count.
    pub fn with_source_filter(mut self, filter: Arc<Vec<bool>>) -> Self {
        self.source_filter = Some(filter);
        self
    }

    /// Isolates the N-worst admission threshold per source; see
    /// [`EnumerationConfig::per_source_n_worst`].
    pub fn with_per_source_n_worst(mut self, on: bool) -> Self {
        self.per_source_n_worst = on;
        self
    }
}

/// Counters describing an enumeration run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct EnumerationStats {
    /// Emitted paths (path × vector combinations).
    pub paths: usize,
    /// Emitted input vectors (each surviving launch polarity of each path
    /// counts once — the paper's "Input vectors" column).
    pub input_vectors: usize,
    /// Search decisions taken (arc choices + justification candidates).
    pub decisions: u64,
    /// Conflicts encountered (subtrees discarded).
    pub conflicts: u64,
    /// Subtrees pruned by the static N-worst bound.
    pub pruned: u64,
    /// Justification calls dropped at the per-call effort cap (their
    /// subtrees are conservatively discarded).
    pub justify_aborts: u64,
    /// Justification candidate enumerations answered from the per-worker
    /// memo table (see `sta_core::justify::JustifyCache`).
    pub justify_cache_hits: u64,
    /// Delay-model evaluations answered from the per-worker memo table
    /// (see `sta_charlib::ModelCache`).
    pub model_cache_hits: u64,
    /// Arc evaluations (one per alive polarity) served by the
    /// corner-compiled kernel table.
    pub compiled_evals: u64,
    /// Arc evaluations that fell back to the interpreted models (kernel
    /// compilation disabled).
    pub fallback_evals: u64,
    /// 64-lane bit-parallel program executions by the justification
    /// pre-filter (one per polarity/timeframe plane).
    pub bitsim_words: u64,
    /// Candidate lanes the pre-filter killed, summed over polarity planes.
    pub bitsim_lanes_filtered: u64,
    /// Justification candidates refuted in every alive polarity — exact
    /// implication-engine attempts skipped entirely.
    pub bitsim_exact_calls_saved: u64,
    /// Nogoods learned, verified and stored (see `sta_core::learn`).
    pub learn_stored: u64,
    /// Justification calls skipped because a stored nogood refuted every
    /// alive polarity.
    pub learn_hits: u64,
    /// Estimated justification decisions those hits saved (the original
    /// refutation cost of each firing nogood).
    pub learn_decisions_saved: u64,
    /// Arcs cut by the per-source dominance bound before justification
    /// started.
    pub learn_bound_cuts: u64,
    /// Refutations offered to the learner (definitive `Unsatisfiable`
    /// results costing at least `learn::MIN_LEARN_DECISIONS`).
    pub learn_attempts: u64,
    /// Decisions spent inside justification calls (a subset of
    /// `decisions`; the remainder are arc-selection decisions).
    pub justify_decisions: u64,
    /// The share of `justify_decisions` spent on calls that ended in a
    /// definitive refutation — the pool nogood learning can recover.
    pub justify_unsat_decisions: u64,
    /// Stored clauses whose literals are the arc's side values alone
    /// (context-free; every future try of the key is a guaranteed hit).
    pub learn_side_clauses: u64,
    /// Candidate clauses that failed verification replay (per polarity);
    /// nothing was stored for that polarity.
    pub learn_verify_failures: u64,
    /// High-water mark of the shared side-assignment scratch stack
    /// (deepest nesting of pending side values across the DFS).
    pub scratch_side_hwm: usize,
    /// High-water mark of the path node stack (longest partial path).
    pub scratch_path_hwm: usize,
    /// Whether a budget cut the run short.
    pub truncated: bool,
}

impl EnumerationStats {
    /// Folds another run's (or worker's) counters into this one. All
    /// counters are sums except the scratch high-water marks (maxima) and
    /// `truncated` (an OR). Used to aggregate per-worker statistics after
    /// a parallel run.
    pub fn merge(&mut self, other: &EnumerationStats) {
        self.paths += other.paths;
        self.input_vectors += other.input_vectors;
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.pruned += other.pruned;
        self.justify_aborts += other.justify_aborts;
        self.justify_cache_hits += other.justify_cache_hits;
        self.model_cache_hits += other.model_cache_hits;
        self.compiled_evals += other.compiled_evals;
        self.fallback_evals += other.fallback_evals;
        self.bitsim_words += other.bitsim_words;
        self.bitsim_lanes_filtered += other.bitsim_lanes_filtered;
        self.bitsim_exact_calls_saved += other.bitsim_exact_calls_saved;
        self.learn_stored += other.learn_stored;
        self.learn_hits += other.learn_hits;
        self.learn_decisions_saved += other.learn_decisions_saved;
        self.learn_bound_cuts += other.learn_bound_cuts;
        self.learn_attempts += other.learn_attempts;
        self.justify_decisions += other.justify_decisions;
        self.justify_unsat_decisions += other.justify_unsat_decisions;
        self.learn_side_clauses += other.learn_side_clauses;
        self.learn_verify_failures += other.learn_verify_failures;
        self.scratch_side_hwm = self.scratch_side_hwm.max(other.scratch_side_hwm);
        self.scratch_path_hwm = self.scratch_path_hwm.max(other.scratch_path_hwm);
        self.truncated |= other.truncated;
    }
}

/// The true-path enumeration engine.
///
/// # Example
///
/// See the crate-level documentation of `sta-core`.
pub struct PathEnumerator<'a> {
    pub(crate) nl: &'a Netlist,
    pub(crate) lib: &'a Library,
    pub(crate) tlib: &'a TimingLibrary,
    pub(crate) cfg: EnumerationConfig,
    /// Corner-compiled kernel table (`None` when disabled), built once at
    /// construction — or injected pre-built via
    /// [`PathEnumerator::with_prebuilt`], e.g. by the timing daemon which
    /// keeps it resident across requests — and shared read-only by every
    /// worker.
    pub(crate) kernel: Option<Arc<CompiledCorner>>,
    /// Compiled forward-simulation program for the bit-parallel
    /// justification pre-filter (`None` when disabled), built once at
    /// construction (or injected pre-built) and shared read-only by every
    /// worker.
    pub(crate) schedule: Option<Arc<Schedule>>,
    /// Caller-injected nogood store (see
    /// [`PathEnumerator::set_nogood_store`]); when `None` and learning is
    /// on, each run creates its own.
    pub(crate) nogood_store: Option<Arc<NogoodStore>>,
}

impl<'a> PathEnumerator<'a> {
    /// Creates an enumerator over a mapped netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains unmapped primitive gates (run the
    /// technology mapper first) or a combinational cycle.
    pub fn new(
        nl: &'a Netlist,
        lib: &'a Library,
        tlib: &'a TimingLibrary,
        cfg: EnumerationConfig,
    ) -> Self {
        Self::with_prebuilt(nl, lib, tlib, cfg, None, None)
    }

    /// Like [`PathEnumerator::new`], but reuses caller-owned compiled
    /// state instead of rebuilding it: a corner-compiled kernel table
    /// (valid for a (timing library, corner) pair — it does not depend on
    /// the netlist, so it survives ECO edits) and/or a compiled bitsim
    /// schedule (netlist-dependent; rebuild after an edit). Either `None`
    /// falls back to compiling fresh when the corresponding config flag is
    /// on. This is what lets the timing daemon pay compilation once per
    /// loaded circuit rather than once per request.
    ///
    /// # Panics
    ///
    /// As [`PathEnumerator::new`].
    pub fn with_prebuilt(
        nl: &'a Netlist,
        lib: &'a Library,
        tlib: &'a TimingLibrary,
        cfg: EnumerationConfig,
        kernel: Option<Arc<CompiledCorner>>,
        schedule: Option<Arc<Schedule>>,
    ) -> Self {
        assert_eq!(nl.topo_gates().len(), nl.num_gates(), "netlist has a cycle");
        assert!(
            nl.gate_ids()
                .all(|g| matches!(nl.gate(g).kind(), GateKind::Cell(_))),
            "netlist must be technology-mapped"
        );
        let kernel = cfg
            .compile_kernels
            .then(|| kernel.unwrap_or_else(|| Arc::new(tlib.compile_corner(cfg.corner))));
        let schedule = cfg
            .bitsim
            .then(|| schedule.unwrap_or_else(|| Arc::new(Schedule::compile(nl, lib))));
        PathEnumerator {
            nl,
            lib,
            tlib,
            cfg,
            kernel,
            schedule,
            nogood_store: None,
        }
    }

    /// The corner-compiled kernel table, if kernel compilation is enabled.
    pub fn kernel(&self) -> Option<&CompiledCorner> {
        self.kernel.as_deref()
    }

    /// Shared handle on the kernel table (for callers that keep it
    /// resident across enumerator rebuilds, e.g. the timing daemon).
    pub fn kernel_arc(&self) -> Option<Arc<CompiledCorner>> {
        self.kernel.clone()
    }

    /// Shared handle on the compiled bitsim schedule, if bitsim is
    /// enabled.
    pub fn schedule_arc(&self) -> Option<Arc<Schedule>> {
        self.schedule.clone()
    }

    /// Installs a caller-owned shared nogood store for the next run(s),
    /// letting the caller inspect what was learned afterwards (the lint
    /// LEARN rules replay every stored clause). Ignored when
    /// [`EnumerationConfig::learning`] is off. Sharing a warm store
    /// across runs is sound — clauses are verified against the netlist
    /// and source, not any per-run state — but each run's `learn.*`
    /// counters then reflect the warm start.
    pub fn set_nogood_store(&mut self, store: Arc<NogoodStore>) {
        self.nogood_store = Some(store);
    }

    /// Runs the enumeration and returns the discovered true paths (sorted
    /// by the canonical order of [`TruePath::canonical_cmp`]: descending
    /// worst arrival with deterministic tie-breaking) together with run
    /// statistics. The returned path set is identical at any
    /// [`EnumerationConfig::threads`] setting.
    pub fn run(&self) -> (Vec<TruePath>, EnumerationStats) {
        let mut collected: Vec<TruePath> = Vec::new();
        let stats = self.run_with(|p| collected.push(p));
        collected.sort_by(TruePath::canonical_cmp);
        if let Some(n) = self.cfg.n_worst {
            collected.truncate(n);
        }
        (collected, stats)
    }

    /// Streaming variant of [`PathEnumerator::run`]: every emitted path is
    /// handed to `sink` instead of being stored (essential for full
    /// enumerations that produce hundreds of thousands of vectors, where
    /// the caller only wants counts or per-structural-path aggregates).
    ///
    /// With `n_worst` configured, the admission threshold still prunes the
    /// search, but paths below the final threshold may reach the sink —
    /// the sink sees a superset of the N worst.
    pub fn run_with(&self, mut sink: impl FnMut(TruePath)) -> EnumerationStats {
        let stats = if self.cfg.threads > 1 {
            crate::parallel::run_parallel(self, &mut sink)
        } else {
            self.run_serial(&mut sink)
        };
        self.ingest_stats(&stats);
        stats
    }

    /// The serial engine behind [`PathEnumerator::run_with`].
    fn run_serial(&self, sink: &mut dyn FnMut(TruePath)) -> EnumerationStats {
        let nogoods = self.cfg.learning.then(|| {
            self.nogood_store
                .clone()
                .unwrap_or_else(|| Arc::new(NogoodStore::new()))
        });
        let mut search = Search {
            nl: self.nl,
            lib: self.lib,
            tlib: self.tlib,
            cfg: &self.cfg,
            kernel: self.kernel.as_deref(),
            eng: ImplicationEngine::new(self.nl, self.lib),
            remaining: self.prune_bounds(),
            fanouts: self.fanouts(),
            is_output: self.output_flags(),
            reach: Vec::new(),
            obligations: Vec::new(),
            delays_r: Vec::new(),
            delays_f: Vec::new(),
            sink,
            emitted: 0,
            worst_arrivals: Vec::new(),
            threshold: f64::NEG_INFINITY,
            shared_bound: None,
            justify_cache: JustifyCache::new(),
            model_cache: ModelCache::new(),
            side_scratch: Vec::new(),
            justify_todo: Vec::new(),
            justify_scratch: JustifyScratch::default(),
            filter: self.schedule.as_deref().map(BitsimFilter::new),
            learn_eng: self
                .cfg
                .learning
                .then(|| ImplicationEngine::new(self.nl, self.lib)),
            nogoods,
            nogood_view: NogoodView::new(),
            cone_scratch: ConeScratch::default(),
            learn_todo: Vec::new(),
            learn_scratch: JustifyScratch::default(),
            arc_bounds: self.learn_arc_bounds(),
            tight_rem: None,
            stats: EnumerationStats::default(),
            progress: self.cfg.obs.progress(),
            justify_hist: self.cfg.obs.histogram("justify.decisions_per_call"),
            path_len_hist: self.cfg.obs.histogram("enumerate.path_gates"),
            bound_updates: self.cfg.obs.counter("enumerate.bound_updates"),
        };
        // Path stacks live outside the source loop: one allocation for the
        // whole run.
        let mut nodes: Vec<NetId> = Vec::new();
        let mut arcs: Vec<PathArc> = Vec::new();
        if let Some(f) = &self.cfg.source_filter {
            assert_eq!(
                f.len(),
                self.nl.inputs().len(),
                "source filter length must match the primary-input count"
            );
        }
        for (pi_pos, &src) in self.nl.inputs().iter().enumerate() {
            if search.stats.truncated {
                break;
            }
            if let Some(f) = &self.cfg.source_filter {
                if !f[pi_pos] {
                    continue;
                }
            }
            if self.cfg.per_source_n_worst {
                // Threshold isolation: this source's admissions must not
                // be pruned by what other sources emitted (and vice
                // versa), so each source's emitted superset is a function
                // of that source alone.
                search.threshold = f64::NEG_INFINITY;
                search.worst_arrivals.clear();
            }
            // Per-source static toggle analysis: O(1) refutation of
            // stable-value requirements on nets that provably toggle
            // (crucial on reconvergent XOR logic).
            let deltas = toggle_analysis(self.nl, self.lib, src);
            search.reach = sensitizable_reach(self.nl, self.lib, &deltas, &search.is_output);
            search.tight_rem = search.arc_bounds.as_ref().map(|ab| {
                crate::arrival::tightened_remaining(
                    self.nl,
                    self.lib,
                    ab,
                    &deltas,
                    &search.is_output,
                )
            });
            search.eng.set_toggles(Some(deltas));
            if !search.reach[src.index()] {
                search.eng.set_toggles(None);
                continue;
            }
            let mark = search.eng.mark();
            let conflicts = search.eng.assign(src, Dual::transition(false), Mask::BOTH);
            let mask = Mask::BOTH.minus(conflicts);
            if mask.any() {
                let timing = PolTimings::launch(self.cfg.input_slew);
                search.dfs(src, false, mask, timing, &mut nodes, &mut arcs);
            }
            search.eng.rollback(mark);
            search.eng.set_toggles(None);
            search.obligations.clear();
        }
        search.stats.justify_cache_hits = search.justify_cache.hits;
        search.stats.model_cache_hits = search.model_cache.hits;
        if let Some(f) = &search.filter {
            search.stats.bitsim_words = f.words;
            search.stats.bitsim_lanes_filtered = f.lanes_filtered;
            search.stats.bitsim_exact_calls_saved = f.exact_calls_saved;
        }
        search.stats
    }

    /// Static pruning bounds for N-worst mode (`None` in full
    /// enumeration). Computed through the kernel table when one exists —
    /// the two variants are bit-identical, so pruning never depends on the
    /// kernel setting.
    pub(crate) fn prune_bounds(&self) -> Option<Vec<f64>> {
        self.cfg.n_worst.map(|_| {
            let timing = match &self.kernel {
                Some(k) => crate::arrival::static_bounds_compiled(
                    self.nl,
                    self.tlib,
                    k,
                    self.cfg.input_slew,
                    self.cfg.prune_margin,
                ),
                None => static_bounds(
                    self.nl,
                    self.tlib,
                    self.cfg.corner,
                    self.cfg.input_slew,
                    self.cfg.prune_margin,
                ),
            };
            crate::arrival::record_bounds_metrics(&self.cfg.obs, self.nl, &timing);
            timing.remaining
        })
    }

    /// Per-arc delay bound table of the dominance cut (`None` unless
    /// learning and N-worst mode are both on), computed once per run and
    /// shared read-only by every worker. Goes through the kernel table
    /// when one exists — the two variants are bit-identical, so the cut
    /// never depends on the kernel setting.
    pub(crate) fn learn_arc_bounds(&self) -> Option<Arc<ArcBounds>> {
        // The swept bound evaluates the model over the whole clamped slew
        // domain, so it needs only the small wiggle margin, not the
        // conservative `prune_margin` of the single-point static pass.
        (self.cfg.learning && self.cfg.n_worst.is_some()).then(|| {
            Arc::new(match &self.kernel {
                Some(k) => crate::arrival::arc_bounds_compiled(
                    self.nl,
                    self.tlib,
                    k,
                    self.cfg.input_slew,
                    crate::arrival::ARC_SWEEP_MARGIN,
                ),
                None => crate::arrival::arc_bounds(
                    self.nl,
                    self.tlib,
                    self.cfg.corner,
                    self.cfg.input_slew,
                    crate::arrival::ARC_SWEEP_MARGIN,
                ),
            })
        })
    }

    /// Folds a finished run's statistics into the observer's metrics
    /// registry, and registers the full enumeration metric name set —
    /// including the parallel-only counters — so that manifests from runs
    /// at different thread counts stay structurally identical. Pure
    /// side-state: a disabled observer makes this a no-op.
    fn ingest_stats(&self, stats: &EnumerationStats) {
        let obs = &self.cfg.obs;
        if !obs.is_enabled() {
            return;
        }
        obs.counter("enumerate.paths").add(stats.paths as u64);
        obs.counter("enumerate.input_vectors")
            .add(stats.input_vectors as u64);
        obs.counter("enumerate.decisions").add(stats.decisions);
        obs.counter("enumerate.conflicts").add(stats.conflicts);
        obs.counter("enumerate.pruned").add(stats.pruned);
        obs.counter("enumerate.justify_aborts")
            .add(stats.justify_aborts);
        obs.counter("enumerate.justify_cache_hits")
            .add(stats.justify_cache_hits);
        obs.counter("enumerate.model_cache_hits")
            .add(stats.model_cache_hits);
        obs.counter("enumerate.compiled_evals")
            .add(stats.compiled_evals);
        obs.counter("enumerate.fallback_evals")
            .add(stats.fallback_evals);
        obs.counter("bitsim.words").add(stats.bitsim_words);
        obs.counter("bitsim.lanes_filtered")
            .add(stats.bitsim_lanes_filtered);
        obs.counter("bitsim.exact_calls_saved")
            .add(stats.bitsim_exact_calls_saved);
        obs.counter("learn.nogoods_stored").add(stats.learn_stored);
        obs.counter("learn.hits").add(stats.learn_hits);
        obs.counter("learn.decisions_saved")
            .add(stats.learn_decisions_saved);
        obs.counter("learn.bound_cuts").add(stats.learn_bound_cuts);
        obs.counter("learn.attempts").add(stats.learn_attempts);
        obs.counter("learn.side_clauses")
            .add(stats.learn_side_clauses);
        obs.counter("learn.verify_failures")
            .add(stats.learn_verify_failures);
        obs.counter("justify.decisions")
            .add(stats.justify_decisions);
        obs.counter("justify.unsat_decisions")
            .add(stats.justify_unsat_decisions);
        obs.counter("enumerate.truncated")
            .add(u64::from(stats.truncated));
        obs.gauge("enumerate.scratch_side_hwm")
            .set(stats.scratch_side_hwm as f64);
        obs.gauge("enumerate.scratch_path_hwm")
            .set(stats.scratch_path_hwm as f64);
        // Touching a handle registers the name; serial runs register the
        // parallel counters too (at zero) for structural identity.
        obs.counter("parallel.steals");
        obs.counter("parallel.tasks");
        obs.counter("enumerate.bound_updates");
        obs.histogram("justify.decisions_per_call");
        obs.histogram("enumerate.path_gates");
    }

    /// Equivalent fanout per gate, precomputed once per run and shared
    /// read-only by every worker.
    pub(crate) fn fanouts(&self) -> Vec<f64> {
        self.nl
            .gate_ids()
            .map(|g| {
                let gate = self.nl.gate(g);
                let cell = cell_of(self.nl, g);
                self.tlib.equivalent_fanout(self.nl, gate.output(), cell)
            })
            .collect()
    }

    /// Primary-output flag per net.
    pub(crate) fn output_flags(&self) -> Vec<bool> {
        let mut v = vec![false; self.nl.num_nets()];
        for &o in self.nl.outputs() {
            v[o.index()] = true;
        }
        v
    }
}

pub(crate) fn cell_of(nl: &Netlist, g: GateId) -> sta_netlist::CellId {
    match nl.gate(g).kind() {
        GateKind::Cell(c) => c,
        GateKind::Prim(_) => unreachable!("checked at construction"),
    }
}

/// Per-source static reachability: can a transition at a net still reach a
/// primary output through arcs whose side requirements do not contradict
/// the toggle analysis? An arc is *potentially sensitizable* iff some
/// vector of the traversed pin requires no stable side value on a net
/// that provably toggles. Sound (necessary-condition) pruning: a net with
/// `reach = false` has no true continuation, so the DFS never forks into
/// it — this is what keeps reconvergent XOR fabrics (c499/c1355) from
/// exploding into 2^depth refuted sub-paths.
pub(crate) fn sensitizable_reach(
    nl: &Netlist,
    lib: &Library,
    deltas: &[Toggle],
    is_output: &[bool],
) -> Vec<bool> {
    let mut reach = vec![false; nl.num_nets()];
    for (i, &po) in is_output.iter().enumerate() {
        if po {
            reach[i] = true;
        }
    }
    let order = nl.topo_gates();
    for &g in order.iter().rev() {
        let gate = nl.gate(g);
        if !reach[gate.output().index()] {
            continue;
        }
        let cell = lib.cell(cell_of(nl, g));
        for pin in 0..gate.fanin() as u8 {
            let input = gate.inputs()[pin as usize];
            if reach[input.index()] {
                continue;
            }
            let arc_ok = cell.vectors_of(pin).iter().any(|v| {
                (0..gate.fanin() as u8).all(|p| {
                    p == pin
                        || v.side_value(p).is_none()
                        || deltas[gate.inputs()[p as usize].index()] != Toggle::One
                })
            });
            if arc_ok {
                reach[input.index()] = true;
            }
        }
    }
    reach
}

/// Arrival/slew of one launch polarity.
#[derive(Clone, Copy, Debug, PartialEq)]
struct EdgeState {
    arrival: f64,
    slew: f64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct PolTimings {
    r: EdgeState,
    f: EdgeState,
}

impl PolTimings {
    pub(crate) fn launch(input_slew: f64) -> Self {
        let e = EdgeState {
            arrival: 0.0,
            slew: input_slew,
        };
        PolTimings { r: e, f: e }
    }

    pub(crate) fn worst_alive(&self, mask: Mask) -> f64 {
        let mut w = f64::NEG_INFINITY;
        if mask.r {
            w = w.max(self.r.arrival);
        }
        if mask.f {
            w = w.max(self.f.arrival);
        }
        w
    }
}

pub(crate) struct Search<'a, 'b> {
    pub(crate) nl: &'a Netlist,
    pub(crate) lib: &'a Library,
    pub(crate) tlib: &'a TimingLibrary,
    pub(crate) cfg: &'a EnumerationConfig,
    /// Corner-compiled kernels (`None` falls back to the interpreted
    /// models through [`ModelCache`]).
    pub(crate) kernel: Option<&'a CompiledCorner>,
    pub(crate) eng: ImplicationEngine<'a>,
    pub(crate) remaining: Option<Vec<f64>>,
    /// Equivalent fanout per gate (precomputed).
    pub(crate) fanouts: Vec<f64>,
    pub(crate) is_output: Vec<bool>,
    /// Per-source sensitizable reachability (see [`sensitizable_reach`]).
    pub(crate) reach: Vec<bool>,
    /// Nets whose values were assigned (not implied) and therefore need
    /// justification from the PIs.
    pub(crate) obligations: Vec<NetId>,
    /// Per-gate delays along the current partial path, per polarity.
    pub(crate) delays_r: Vec<f64>,
    pub(crate) delays_f: Vec<f64>,
    /// Where emitted paths go.
    pub(crate) sink: &'b mut dyn FnMut(TruePath),
    /// Paths handed to the sink so far.
    pub(crate) emitted: usize,
    /// Worst arrivals of admitted paths (threshold bookkeeping in N-worst
    /// mode).
    pub(crate) worst_arrivals: Vec<f64>,
    /// N-worst admission threshold (−∞ until the set is full).
    pub(crate) threshold: f64,
    /// Globally-tightest published N-worst threshold, shared by all
    /// workers of a parallel run (total-order f64 encoding, monotone
    /// `fetch_max`; see the `parallel` module). `None` in serial runs.
    pub(crate) shared_bound: Option<&'a AtomicU64>,
    /// Memo table over justification candidate enumeration.
    pub(crate) justify_cache: JustifyCache,
    /// Memo table over delay-model evaluations.
    pub(crate) model_cache: ModelCache,
    /// Shared stack of pending side assignments: each [`Search::try_arc`]
    /// activation appends its slice and truncates on exit, so the hot loop
    /// never allocates.
    pub(crate) side_scratch: Vec<(NetId, bool)>,
    /// Reusable obligation list handed to the justification engine.
    pub(crate) justify_todo: Vec<NetId>,
    /// Reusable buffers of the justification search itself.
    pub(crate) justify_scratch: JustifyScratch,
    /// Bit-parallel justification pre-filter (`None` when disabled); its
    /// counters are copied into [`EnumerationStats`] after the run.
    pub(crate) filter: Option<BitsimFilter<'a>>,
    /// Scratch engine for learn-time nogood verification replays (`None`
    /// with learning off). Reset before and after every replay; never
    /// carries search state.
    pub(crate) learn_eng: Option<ImplicationEngine<'a>>,
    /// Shared learned-nogood store (`None` with learning off). Serial
    /// runs own theirs; parallel workers clone one `Arc` (see
    /// `sta_core::learn` for the sharing and soundness story).
    pub(crate) nogoods: Option<Arc<NogoodStore>>,
    /// Per-worker epoch-validated read cache over the store.
    pub(crate) nogood_view: NogoodView,
    /// Reusable cone-walk buffers of the nogood cut extraction.
    pub(crate) cone_scratch: ConeScratch,
    /// Reusable side-net list handed to the cut extraction.
    pub(crate) learn_todo: Vec<NetId>,
    /// Reusable justification buffers of the verification replay (kept
    /// apart from `justify_scratch` for clarity; both are transient).
    pub(crate) learn_scratch: JustifyScratch,
    /// Per-arc delay bounds of the dominance cut (`None` unless learning
    /// and N-worst mode are both on).
    pub(crate) arc_bounds: Option<Arc<ArcBounds>>,
    /// Per-source tightened remaining bounds (see
    /// `arrival::tightened_remaining`), refreshed at every source switch;
    /// `None` whenever `arc_bounds` is.
    pub(crate) tight_rem: Option<Vec<f64>>,
    pub(crate) stats: EnumerationStats,
    /// Progress tap (installed via `sta_obs::Observer::install_progress`);
    /// relaxed side-state counters only, never read back by the search.
    pub(crate) progress: Option<std::sync::Arc<sta_obs::Progress>>,
    /// Per-call justification effort histogram (inert when disabled).
    pub(crate) justify_hist: sta_obs::Histogram,
    /// Admitted-path length histogram, arcs per path (inert when
    /// disabled).
    pub(crate) path_len_hist: sta_obs::Histogram,
    /// N-worst admission-threshold tightenings (inert when disabled).
    pub(crate) bound_updates: sta_obs::Counter,
}

impl Search<'_, '_> {
    /// The N-worst admission threshold in force: the worker-local one,
    /// tightened by the shared bound published by other workers. Every
    /// published value is some worker's N-th-largest admitted arrival,
    /// which never exceeds the global N-th-largest (a subset's N-th
    /// largest is at most the superset's), so tightening with it never
    /// drops a path that belongs in the final N — see the `parallel`
    /// module docs for the full argument.
    pub(crate) fn effective_threshold(&self) -> f64 {
        match self.shared_bound {
            Some(bound) => self.threshold.max(crate::parallel::decode_bound(
                bound.load(std::sync::atomic::Ordering::Relaxed),
            )),
            None => self.threshold,
        }
    }

    fn publish_threshold(&self) {
        if let Some(bound) = self.shared_bound {
            if self.threshold > f64::NEG_INFINITY {
                bound.fetch_max(
                    crate::parallel::encode_bound(self.threshold),
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
        }
    }

    pub(crate) fn budget_exhausted(&mut self) -> bool {
        if self.cfg.max_decisions != 0 && self.stats.decisions >= self.cfg.max_decisions {
            self.stats.truncated = true;
        }
        if let Some(mp) = self.cfg.max_paths {
            if self.emitted >= mp {
                self.stats.truncated = true;
            }
        }
        self.stats.truncated
    }

    fn dfs(
        &mut self,
        net: NetId,
        parity: bool,
        mask: Mask,
        timing: PolTimings,
        nodes: &mut Vec<NetId>,
        arcs: &mut Vec<PathArc>,
    ) {
        nodes.clear();
        arcs.clear();
        self.dfs_inner(net, parity, mask, timing, nodes, arcs);
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_inner(
        &mut self,
        net: NetId,
        parity: bool,
        mask: Mask,
        timing: PolTimings,
        nodes: &mut Vec<NetId>,
        arcs: &mut Vec<PathArc>,
    ) {
        if self.budget_exhausted() {
            return;
        }
        nodes.push(net);
        if nodes.len() > self.stats.scratch_path_hwm {
            self.stats.scratch_path_hwm = nodes.len();
        }
        let mut mask = mask;
        if self.is_output[net.index()] && !arcs.is_empty() {
            mask = self.emit(mask, &timing, nodes, arcs);
        }
        if mask.any() {
            // Pruning against the N-worst threshold. The per-source
            // tightened bound (learning mode) is never looser than the
            // global structural one, so preferring it only prunes more.
            let prune = if let Some(rem) = self.tight_rem.as_ref().or(self.remaining.as_ref()) {
                let threshold = self.effective_threshold();
                self.cfg.n_worst.is_some()
                    && threshold > f64::NEG_INFINITY
                    && timing.worst_alive(mask) + rem[net.index()] < threshold
            } else {
                false
            };
            if prune {
                self.stats.pruned += 1;
            } else {
                // The netlist borrow (`'a`, immutable for the whole run)
                // is independent of `&mut self`, so the fanout list is
                // iterated in place — the old per-visit `to_vec` snapshot
                // was the hottest allocation of the DFS.
                let nl = self.nl;
                for pr in nl.net(net).fanout() {
                    let out_net = nl.gate(pr.gate).output();
                    if !self.reach[out_net.index()] && !self.is_output[out_net.index()] {
                        continue;
                    }
                    let cell_id = cell_of(nl, pr.gate);
                    let n_vectors = self.lib.cell(cell_id).vectors_of(pr.pin as u8).len();
                    for vector in 0..n_vectors {
                        if self.budget_exhausted() {
                            break;
                        }
                        self.try_arc(
                            pr.gate,
                            pr.pin as u8,
                            vector,
                            parity,
                            mask,
                            timing,
                            nodes,
                            arcs,
                        );
                    }
                }
            }
        }
        nodes.pop();
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn try_arc(
        &mut self,
        gate: GateId,
        pin: u8,
        vector: usize,
        parity: bool,
        mask: Mask,
        timing: PolTimings,
        nodes: &mut Vec<NetId>,
        arcs: &mut Vec<PathArc>,
    ) {
        // Root-task boundary (serial and parallel alike): the filter's
        // probing throttle must not carry state between tasks, or its
        // counters would depend on how tasks are sharded across workers.
        if arcs.is_empty() {
            if let Some(f) = self.filter.as_mut() {
                f.reset_throttle();
            }
        }
        // Dominance cut (learning + N-worst only): if even the most
        // optimistic completion through this arc — current worst alive
        // arrival, plus this arc's delay bound, plus the tightened
        // remaining bound from its output — cannot reach the admission
        // threshold, the whole subtree is cut before any side value is
        // assigned. Bound-safe: every path in the subtree would be
        // rejected by `record` anyway (strict `<`, and the threshold
        // only tightens), so the emitted set is unchanged.
        if let (Some(tight), Some(ab)) = (&self.tight_rem, &self.arc_bounds) {
            let threshold = self.effective_threshold();
            if threshold > f64::NEG_INFINITY {
                let out_net = self.nl.gate(gate).output();
                let best =
                    timing.worst_alive(mask) + ab.get(gate, pin, vector) + tight[out_net.index()];
                if best < threshold {
                    self.stats.learn_bound_cuts += 1;
                    return;
                }
            }
        }
        self.stats.decisions += 1;
        let cell_id = cell_of(self.nl, gate);
        let cell = self.lib.cell(cell_id);
        let sv = &cell.vectors_of(pin)[vector];
        let polarity = sv.polarity;
        let mark = self.eng.mark();
        let obligations_before = self.obligations.len();

        // Assign the vector's side values and propagate. The side list
        // lives in the shared scratch stack (truncated on exit) — nested
        // activations each own a disjoint tail slice.
        let side_start = self.side_scratch.len();
        {
            let g = self.nl.gate(gate);
            for p in 0..g.fanin() as u8 {
                if p == pin {
                    continue;
                }
                if let Some(v) = sv.side_value(p) {
                    self.side_scratch.push((g.inputs()[p as usize], v));
                }
            }
        }
        let side_end = self.side_scratch.len();
        if side_end > self.stats.scratch_side_hwm {
            self.stats.scratch_side_hwm = side_end;
        }
        let mut alive = mask;
        for i in side_start..side_end {
            let (side_net, value) = self.side_scratch[i];
            let conflicts = self.eng.assign(side_net, Dual::stable(value), alive);
            alive = alive.minus(conflicts);
            if !alive.any() {
                break;
            }
        }
        if alive.any() {
            for i in side_start..side_end {
                self.obligations.push(self.side_scratch[i].0);
            }
            // Feasibility: the values just assigned must be justifiable
            // from the PIs (the paper: "justify the logic values assigned
            // until the inputs of the circuit are reached"). This is an
            // incremental check — joint satisfiability of *all*
            // accumulated requirements is re-established at emission. The
            // witness is rolled back; only the requirements and their
            // forward implications persist on the trail.
            let key = NogoodKey {
                src: nodes[0],
                gate,
                pin,
                vector: vector as u32,
            };
            let justified = if side_start == side_end {
                Some(alive)
            } else if let Some(saved) = self.consult_nogoods(key, alive) {
                // A stored clause refutes every alive polarity: the
                // justification below could only have returned `None`.
                // Taking the same branch keeps the path set byte-exact
                // (full-kill rule — see `sta_core::learn`).
                self.stats.learn_hits += 1;
                self.stats.learn_decisions_saved += saved;
                None
            } else {
                let witness_mark = self.eng.mark();
                self.justify_todo.clear();
                for i in side_start..side_end {
                    let n = self.side_scratch[i].0;
                    self.justify_todo.push(n);
                }
                let decisions_before = self.stats.decisions;
                let (out, unsat) = self.justify_staged(alive);
                self.eng.rollback(witness_mark);
                if unsat {
                    // Definitive refutation (never a budget abort): worth
                    // learning if it cost enough to re-derive.
                    let spent = self.stats.decisions - decisions_before;
                    if spent >= learn::MIN_LEARN_DECISIONS {
                        let via = self.nl.gate(gate).inputs()[pin as usize];
                        self.learn_from_refutation(key, via, alive, side_start..side_end, spent);
                    }
                }
                out
            };
            if let Some(m3) = justified {
                if m3.any() {
                    let new_timing =
                        self.advance_timing(gate, cell_id, pin, vector, parity, m3, timing);
                    let out = self.nl.gate(gate).output();
                    arcs.push(PathArc {
                        gate,
                        pin,
                        vector,
                        polarity,
                    });
                    let inverted = polarity == Polarity::Inverting;
                    self.dfs_inner(out, parity ^ inverted, m3, new_timing, nodes, arcs);
                    arcs.pop();
                    self.delays_r.pop();
                    self.delays_f.pop();
                }
            } else {
                self.stats.conflicts += 1;
            }
        } else {
            self.stats.conflicts += 1;
        }
        self.obligations.truncate(obligations_before);
        self.side_scratch.truncate(side_start);
        self.eng.rollback(mark);
    }

    /// Adds the arc's polynomial delay/slew per alive polarity and pushes
    /// the per-gate delay entries. The corner-compiled kernel table and
    /// the interpreted `ModelCache` path share the same Horner arithmetic,
    /// so the two branches produce bit-identical numbers.
    #[allow(clippy::too_many_arguments)]
    fn advance_timing(
        &mut self,
        gate: GateId,
        cell_id: sta_netlist::CellId,
        pin: u8,
        vector: usize,
        parity: bool,
        mask: Mask,
        timing: PolTimings,
    ) -> PolTimings {
        let fo = self.fanouts[gate.index()];
        let mut out = timing;
        let (dr, df);
        if let Some(kernel) = self.kernel {
            let arc = kernel.arc_id(cell_id, pin, vector);
            let step = |state: &mut EdgeState, launch: Edge, alive: bool| -> f64 {
                if !alive {
                    return 0.0;
                }
                let in_edge = if parity { launch.invert() } else { launch };
                let (d, s) = kernel.eval(arc, in_edge, fo, state.slew);
                // Clamp against degenerate extrapolation: delays and slews
                // are physical quantities.
                let d = d.max(0.1);
                let s = s.max(0.5);
                state.arrival += d;
                state.slew = s;
                d
            };
            dr = step(&mut out.r, Edge::Rise, mask.r);
            df = step(&mut out.f, Edge::Fall, mask.f);
            self.stats.compiled_evals += u64::from(mask.r) + u64::from(mask.f);
        } else {
            let tlib = self.tlib;
            let corner = self.cfg.corner;
            let cache = &mut self.model_cache;
            let mut step = |state: &mut EdgeState, launch: Edge, alive: bool| -> f64 {
                if !alive {
                    return 0.0;
                }
                let in_edge = if parity { launch.invert() } else { launch };
                let (d, s) = tlib.delay_slew_cached(
                    cache, cell_id, pin, vector, in_edge, fo, state.slew, corner,
                );
                // Clamp against degenerate extrapolation: delays and slews
                // are physical quantities.
                let d = d.max(0.1);
                let s = s.max(0.5);
                state.arrival += d;
                state.slew = s;
                d
            };
            dr = step(&mut out.r, Edge::Rise, mask.r);
            df = step(&mut out.f, Edge::Fall, mask.f);
            self.stats.fallback_evals += u64::from(mask.r) + u64::from(mask.f);
        }
        self.delays_r.push(dr);
        self.delays_f.push(df);
        out
    }

    /// Emits a path ending at `net` if the accumulated requirements are
    /// justifiable; returns the (possibly reduced) alive mask.
    fn emit(&mut self, mask: Mask, timing: &PolTimings, nodes: &[NetId], arcs: &[PathArc]) -> Mask {
        let witness_mark = self.eng.mark();
        let justified = self.justify(mask);
        let m3 = match justified {
            Some(m) if m.any() => m,
            _ => {
                self.eng.rollback(witness_mark);
                self.stats.conflicts += 1;
                return Mask::NONE;
            }
        };
        // Witness is active: extract the PI vector.
        let source = nodes[0];
        let input_vector: Vec<PiValue> = self
            .nl
            .inputs()
            .iter()
            .map(|&pi| {
                if pi == source {
                    return PiValue::Transition;
                }
                let d = self.eng.value(pi);
                let v = if m3.r { d.r } else { d.f };
                match (v.init(), v.fin()) {
                    (TriVal::X, TriVal::X) => PiValue::X,
                    _ if v == V9::S0 => PiValue::Zero,
                    _ if v == V9::S1 => PiValue::One,
                    // Semi-undetermined at a PI: only the settled frame is
                    // constrained; report that.
                    (_, TriVal::Zero) => PiValue::Zero,
                    (_, TriVal::One) => PiValue::One,
                    _ => PiValue::X,
                }
            })
            .collect();
        self.eng.rollback(witness_mark);

        let parity_edge = |launch: Edge, gate_count: usize| -> Edge {
            let inversions = arcs[..gate_count]
                .iter()
                .filter(|a| a.polarity == Polarity::Inverting)
                .count();
            if inversions % 2 == 1 {
                launch.invert()
            } else {
                launch
            }
        };
        let mk = |launch: Edge, st: &EdgeState, delays: &[f64]| LaunchTiming {
            launch_edge: launch,
            arrival: st.arrival,
            slew: st.slew,
            final_edge: parity_edge(launch, arcs.len()),
            gate_delays: delays.to_vec(),
        };
        let path = TruePath {
            source,
            nodes: nodes.to_vec(),
            arcs: arcs.to_vec(),
            rise: m3.r.then(|| mk(Edge::Rise, &timing.r, &self.delays_r)),
            fall: m3.f.then(|| mk(Edge::Fall, &timing.f, &self.delays_f)),
            input_vector,
        };
        self.record(path);
        m3
    }

    fn record(&mut self, path: TruePath) {
        self.stats.paths += 1;
        self.stats.input_vectors += path.num_polarities();
        if let Some(n) = self.cfg.n_worst {
            let w = path.worst_arrival();
            // Ties with the threshold are admitted (strict `<`): the final
            // cutoff arrival may be shared by several paths, and the
            // deterministic truncation in `run` needs all of them in the
            // sink to pick the same N regardless of discovery order (and
            // of thread count). The local threshold stays −∞ until N
            // local admissions, so the shared bound alone can also reject
            // (any published bound is ≤ the global N-th largest arrival).
            if w < self.effective_threshold() {
                return;
            }
            self.note_emission(&path);
            self.worst_arrivals.push(w);
            self.emitted += 1;
            (self.sink)(path);
            // Keep the threshold set loosely bounded; refresh the
            // admission threshold from the current N-th worst.
            if self.worst_arrivals.len() >= 2 * n {
                self.worst_arrivals.sort_by(|a, b| b.total_cmp(a));
                self.worst_arrivals.truncate(n);
            }
            if self.worst_arrivals.len() >= n {
                let mut arrivals = self.worst_arrivals.clone();
                arrivals.sort_by(f64::total_cmp);
                self.threshold = arrivals[arrivals.len() - n];
                self.bound_updates.inc();
                if let Some(p) = &self.progress {
                    p.set_bound(self.threshold);
                }
                self.publish_threshold();
            }
        } else {
            self.note_emission(&path);
            self.emitted += 1;
            (self.sink)(path);
        }
    }

    /// Observability tap on path admission: progress counters and the
    /// path-length histogram. Side-state only — nothing here is read back
    /// by the search.
    fn note_emission(&mut self, path: &TruePath) {
        self.path_len_hist.observe(path.arcs.len() as f64);
        if let Some(p) = &self.progress {
            use std::sync::atomic::Ordering::Relaxed;
            p.paths.fetch_add(1, Relaxed);
            p.frontier_depth.store(path.nodes.len() as u64, Relaxed);
        }
    }

    /// Complete backward justification of every pending obligation.
    /// On success the witness assignments are left on the trail (the
    /// caller rolls back to its own mark) and the surviving mask is
    /// returned; `None` means no witness exists for any alive polarity
    /// (or the decision budget ran out — `stats.truncated` is set then).
    fn justify(&mut self, mask: Mask) -> Option<Mask> {
        self.justify_todo.clear();
        self.justify_todo.extend_from_slice(&self.obligations);
        self.justify_staged(mask).0
    }

    /// Consults the nogood store for the current arc: `Some(saved)` when
    /// stored clauses refute every alive polarity of the engine's state
    /// (the full-kill rule), `None` otherwise or with learning off.
    fn consult_nogoods(&mut self, key: NogoodKey, alive: Mask) -> Option<u64> {
        let store = self.nogoods.as_ref()?;
        let list = self.nogood_view.get(store.as_ref(), key)?;
        learn::full_kill(&list, &self.eng, alive)
    }

    /// Extracts, verifies and stores nogoods from a definitive
    /// justification refutation of the side nets in
    /// `side_scratch[sides]`, one per alive polarity. Verification
    /// replays the candidate cut on the scratch engine under the same
    /// toggle deltas; anything not *provably* unjustifiable there is
    /// dropped — soundness by construction (see `sta_core::learn`).
    fn learn_from_refutation(
        &mut self,
        key: NogoodKey,
        via: NetId,
        alive: Mask,
        sides: std::ops::Range<usize>,
        cost: u64,
    ) {
        let Some(store) = self.nogoods.clone() else {
            return;
        };
        if self.learn_eng.is_none() {
            return;
        }
        // A saturated key cannot store anything — skip the extraction and
        // verification work outright.
        if store
            .get(&key)
            .is_some_and(|l| l.len() >= learn::MAX_PER_KEY)
        {
            return;
        }
        self.learn_todo.clear();
        self.learn_todo.push(via);
        for i in sides.clone() {
            let n = self.side_scratch[i].0;
            self.learn_todo.push(n);
        }
        self.stats.learn_attempts += 1;
        for pol_r in [true, false] {
            if !(if pol_r { alive.r } else { alive.f }) {
                continue;
            }
            // Most general candidate first: the arc's own side values
            // plus the transition arriving on the propagating pin, with
            // no further partial-path context. When that verifies
            // unsatisfiable, any future try of this key with the same
            // arrival direction is a guaranteed hit (the engine assigns
            // exactly these values on every activation of the arc) — one
            // verification buys a near-permanent refutation of the arc.
            let mut side_lits: Vec<(NetId, V9)> = sides
                .clone()
                .map(|i| {
                    let (n, b) = self.side_scratch[i];
                    (n, V9::stable(b))
                })
                .collect();
            let via_val = {
                let v = self.eng.value(via);
                if pol_r {
                    v.r
                } else {
                    v.f
                }
            };
            // Stable values only — see `learn::extract_cut`: the
            // justifier's refutations are definitive over stable
            // requirements, not transitions.
            if via_val == V9::S0 || via_val == V9::S1 {
                side_lits.push((via, via_val));
            }
            let verified_side = learn::verify_cut(
                self.learn_eng.as_mut().expect("learning engine"),
                self.nl,
                self.eng.toggles(),
                key.src,
                pol_r,
                &side_lits,
                &mut self.justify_todo,
                &mut self.learn_scratch,
            );
            let lits = if verified_side {
                self.stats.learn_side_clauses += 1;
                side_lits
            } else {
                // Context-dependent refutation: fall back to the fanin
                // cone cut, which captures the partial-path state the
                // proof leaned on.
                let Some(cone_lits) = learn::extract_cut(
                    &self.eng,
                    self.nl,
                    &self.learn_todo,
                    pol_r,
                    &mut self.cone_scratch,
                ) else {
                    self.stats.learn_verify_failures += 1;
                    continue;
                };
                let verified = learn::verify_cut(
                    self.learn_eng.as_mut().expect("learning engine"),
                    self.nl,
                    self.eng.toggles(),
                    key.src,
                    pol_r,
                    &cone_lits,
                    &mut self.justify_todo,
                    &mut self.learn_scratch,
                );
                if !verified {
                    self.stats.learn_verify_failures += 1;
                    continue;
                }
                cone_lits
            };
            let clause = crate::learn::Nogood { pol_r, lits, cost };
            if store.insert(key, clause) {
                self.stats.learn_stored += 1;
            }
        }
    }

    /// Justifies the obligations currently staged in `justify_todo`
    /// (which is left in an unspecified state). The second return is
    /// `true` only on a definitive [`JustifyOutcome::Unsatisfiable`] —
    /// the learn trigger; a budget abort proves nothing and must never
    /// be learned from.
    fn justify_staged(&mut self, mask: Mask) -> (Option<Mask>, bool) {
        let mut budget = if self.cfg.justify_decision_limit == 0 {
            JustifyBudget::unbounded()
        } else {
            JustifyBudget::with_decision_limit(self.cfg.justify_decision_limit)
        };
        let mut todo = std::mem::take(&mut self.justify_todo);
        let out = crate::justify::justify_in(
            &mut self.eng,
            self.nl,
            &mut todo,
            mask,
            &mut budget,
            Some(&mut self.justify_cache),
            &mut self.justify_scratch,
            Some(&self.justify_hist),
            self.filter.as_mut(),
        );
        self.justify_todo = todo;
        self.stats.decisions += budget.decisions;
        self.stats.justify_decisions += budget.decisions;
        if matches!(out, JustifyOutcome::Unsatisfiable) {
            self.stats.justify_unsat_decisions += budget.decisions;
        }
        if let Some(p) = &self.progress {
            p.decisions
                .fetch_add(budget.decisions, std::sync::atomic::Ordering::Relaxed);
        }
        if self.cfg.max_decisions != 0 && self.stats.decisions >= self.cfg.max_decisions {
            self.stats.truncated = true;
        }
        match out {
            JustifyOutcome::Satisfied(m) => (Some(m), false),
            JustifyOutcome::BudgetExhausted => {
                self.stats.justify_aborts += 1;
                if std::env::var_os("STA_DEBUG_JUSTIFY").is_some() {
                    eprintln!(
                        "justify abort: {} backtracks, obligations {:?}",
                        budget.backtracks,
                        self.obligations
                            .iter()
                            .map(|n| self.nl.net_label(*n))
                            .collect::<Vec<_>>()
                    );
                }
                (None, false)
            }
            JustifyOutcome::Unsatisfiable => (None, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Technology;
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::GateKind;

    fn setup(tech: &Technology) -> (&'static Library, &'static TimingLibrary) {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static LIB: OnceLock<Library> = OnceLock::new();
        static TLIBS: OnceLock<Mutex<HashMap<String, &'static TimingLibrary>>> = OnceLock::new();
        let lib = LIB.get_or_init(Library::standard);
        let mut map = TLIBS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap();
        let tlib = *map.entry(tech.name.clone()).or_insert_with(|| {
            Box::leak(Box::new(
                characterize(lib, tech, &CharConfig::fast()).unwrap(),
            ))
        });
        (lib, tlib)
    }

    /// An inverter chain has exactly one path per polarity pair.
    #[test]
    fn inverter_chain_single_path() {
        let tech = Technology::n90();
        let (lib, tlib) = setup(&tech);
        let inv = lib.cell_by_name("INV").unwrap().id();
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let x = nl.add_gate(GateKind::Cell(inv), &[a], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(inv), &[x], None).unwrap();
        nl.mark_output(y);
        let cfg = EnumerationConfig::new(Corner::nominal(&tech));
        let (paths, stats) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
        assert_eq!(paths.len(), 1);
        assert_eq!(stats.input_vectors, 2); // both polarities survive
        let p = &paths[0];
        assert!(p.rise.is_some() && p.fall.is_some());
        assert_eq!(p.nodes.len(), 3);
        assert!(p.worst_arrival() > 0.0);
        // Gate delays sum to the arrival.
        let r = p.rise.as_ref().unwrap();
        let sum: f64 = r.gate_delays.iter().sum();
        assert!((sum - r.arrival).abs() < 1e-9);
        assert_eq!(r.final_edge, Edge::Rise); // two inversions
    }

    /// AND2 with both inputs: each input yields one path; the side input
    /// must be justified to 1 and is reported in the witness vector.
    #[test]
    fn and2_paths_with_witness() {
        let tech = Technology::n90();
        let (lib, tlib) = setup(&tech);
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_gate(GateKind::Cell(and2), &[a, b], None).unwrap();
        nl.mark_output(z);
        let cfg = EnumerationConfig::new(Corner::nominal(&tech));
        let (paths, _) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.num_polarities(), 2);
            // The side input must be 1 in the witness.
            let side_idx = if p.source == a { 1 } else { 0 };
            assert_eq!(p.input_vector[side_idx], PiValue::One);
        }
    }

    /// AO22 contributes one path per sensitization vector: 3 per input.
    #[test]
    fn ao22_emits_one_path_per_vector() {
        let tech = Technology::n90();
        let (lib, tlib) = setup(&tech);
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let mut nl = Netlist::new("t");
        let ins: Vec<_> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let z = nl.add_gate(GateKind::Cell(ao22), &ins, None).unwrap();
        nl.mark_output(z);
        let cfg = EnumerationConfig::new(Corner::nominal(&tech));
        let (paths, stats) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
        // 4 inputs × 3 vectors.
        assert_eq!(paths.len(), 12, "{stats:?}");
        // Vector-specific delays differ between cases of the same pin.
        let through_a: Vec<&TruePath> = paths.iter().filter(|p| p.source == ins[0]).collect();
        assert_eq!(through_a.len(), 3);
        let d: Vec<f64> = through_a
            .iter()
            .map(|p| p.fall.as_ref().unwrap().arrival)
            .collect();
        assert!(
            (d[0] - d[1]).abs() > 1e-6 || (d[0] - d[2]).abs() > 1e-6,
            "case delays should differ: {d:?}"
        );
    }

    /// A blocked path (constant side input cannot be justified) is not
    /// reported: NAND(a, b) with b also required 0 through another cone.
    #[test]
    fn false_path_is_rejected() {
        let tech = Technology::n90();
        let (lib, tlib) = setup(&tech);
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let nor2 = lib.cell_by_name("NOR2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        // x = AND(a, a) fine; y = NOR(a, a) = !a; z = AND(x, y) = a & !a = 0.
        let x = nl.add_gate(GateKind::Cell(and2), &[a, a], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(nor2), &[a, a], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(and2), &[x, y], None).unwrap();
        nl.mark_output(z);
        let cfg = EnumerationConfig::new(Corner::nominal(&tech));
        let (paths, _stats) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
        // z is constant 0: no transition can reach it. The static toggle /
        // reachability analyses typically refute the whole cone before a
        // single engine conflict is even raised.
        assert!(paths.is_empty(), "{:?}", paths.len());
    }

    /// Reconvergent c17: every reported path must be electrically sound —
    /// cross-check the witness vector by three-valued evaluation.
    #[test]
    fn c17_paths_have_consistent_witnesses() {
        let tech = Technology::n90();
        let (lib, tlib) = setup(&tech);
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let mut nl = Netlist::new("c17");
        let i1 = nl.add_input("1");
        let i2 = nl.add_input("2");
        let i3 = nl.add_input("3");
        let i6 = nl.add_input("6");
        let i7 = nl.add_input("7");
        let n10 = nl.add_gate(GateKind::Cell(nand2), &[i1, i3], None).unwrap();
        let n11 = nl.add_gate(GateKind::Cell(nand2), &[i3, i6], None).unwrap();
        let n16 = nl
            .add_gate(GateKind::Cell(nand2), &[i2, n11], None)
            .unwrap();
        let n19 = nl
            .add_gate(GateKind::Cell(nand2), &[n11, i7], None)
            .unwrap();
        let n22 = nl
            .add_gate(GateKind::Cell(nand2), &[n10, n16], None)
            .unwrap();
        let n23 = nl
            .add_gate(GateKind::Cell(nand2), &[n16, n19], None)
            .unwrap();
        nl.mark_output(n22);
        nl.mark_output(n23);
        let cfg = EnumerationConfig::new(Corner::nominal(&tech));
        let (paths, stats) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
        assert!(!paths.is_empty());
        assert!(!stats.truncated);
        // Verify every witness by two-pattern simulation: flipping the
        // source value must flip the path endpoint.
        for p in &paths {
            let launches = [
                p.rise.as_ref().map(|_| Edge::Rise),
                p.fall.as_ref().map(|_| Edge::Fall),
            ];
            for launch in launches.into_iter().flatten() {
                let assign = |source_val: bool| -> Vec<bool> {
                    nl.inputs()
                        .iter()
                        .zip(&p.input_vector)
                        .map(|(_, v)| match v {
                            PiValue::Transition => source_val,
                            PiValue::One => true,
                            // Don't-cares: 0 is as good as any for a
                            // *static* sensitization check.
                            PiValue::Zero | PiValue::X => false,
                        })
                        .collect()
                };
                let (init, fin) = match launch {
                    Edge::Rise => (false, true),
                    Edge::Fall => (true, false),
                };
                let before = lib.eval_netlist(&nl, &assign(init));
                let after = lib.eval_netlist(&nl, &assign(fin));
                let endpoint = p.endpoint();
                let po_idx = nl.outputs().iter().position(|&o| o == endpoint).unwrap();
                assert_ne!(
                    before[po_idx],
                    after[po_idx],
                    "witness fails to toggle endpoint for {:?}",
                    p.describe(&nl, lib)
                );
            }
        }
    }

    /// The streaming sink sees exactly the paths the collecting API
    /// returns (full enumeration), and never allocates the result vector.
    #[test]
    fn run_with_streams_every_emission() {
        let tech = Technology::n90();
        let (lib, tlib) = setup(&tech);
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let mut nl = Netlist::new("t");
        let ins: Vec<_> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let z = nl.add_gate(GateKind::Cell(ao22), &ins, None).unwrap();
        nl.mark_output(z);
        let cfg = EnumerationConfig::new(Corner::nominal(&tech));
        let (collected, stats_a) = PathEnumerator::new(&nl, lib, tlib, cfg.clone()).run();
        let mut streamed = 0usize;
        let stats_b = PathEnumerator::new(&nl, lib, tlib, cfg).run_with(|_| streamed += 1);
        assert_eq!(collected.len(), streamed);
        assert_eq!(stats_a, stats_b, "deterministic search");
    }

    /// N-worst mode returns the same top paths as full enumeration.
    #[test]
    fn n_worst_agrees_with_full_enumeration() {
        let tech = Technology::n90();
        let (lib, tlib) = setup(&tech);
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let oa12 = lib.cell_by_name("OA12").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.add_gate(GateKind::Cell(nand2), &[a, b], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(oa12), &[x, b, c], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(nand2), &[y, a], None).unwrap();
        nl.mark_output(z);
        let corner = Corner::nominal(&tech);
        let (all_paths, _) =
            PathEnumerator::new(&nl, lib, tlib, EnumerationConfig::new(corner)).run();
        let (top, _) = PathEnumerator::new(
            &nl,
            lib,
            tlib,
            EnumerationConfig::new(corner).with_n_worst(3),
        )
        .run();
        assert!(top.len() <= 3);
        let full_top: Vec<f64> = all_paths
            .iter()
            .take(top.len())
            .map(TruePath::worst_arrival)
            .collect();
        let got: Vec<f64> = top.iter().map(TruePath::worst_arrival).collect();
        for (a, b) in full_top.iter().zip(&got) {
            assert!((a - b).abs() < 1e-6, "full {full_top:?} vs nworst {got:?}");
        }
    }
}
