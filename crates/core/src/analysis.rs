//! The unified analysis facade: one builder from *request* to *outcome*.
//!
//! Every front-end flow — `analyze`, `slack`, `baseline`, the lint
//! path-certificate replay — needs the same preamble: resolve a catalog
//! circuit, map it onto the standard library, characterize (or load the
//! cached) timing models for a technology, pick a corner, and assemble an
//! [`EnumerationConfig`]. [`AnalysisRequest`] owns that preamble once,
//! behind a builder, and hands back either a reusable
//! [`AnalysisContext`] (circuit + timing, for flows that drive their own
//! analysis such as the baseline) or a finished [`AnalysisOutcome`]
//! (enumerated true paths + statistics).
//!
//! The facade is also where observability attaches: pass an enabled
//! `sta_obs::Observer` and the run records phase spans (`load`,
//! `characterize`, `enumerate`, `slack`), engine metrics, and — via the
//! CLI — a run manifest. Observation never changes any computed result.

use std::path::PathBuf;

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{CharConfig, CharError, TimingLibrary};
use sta_circuits::catalog;
use sta_netlist::{Netlist, NetlistError};
use sta_obs::{Observer, SpanGuard};

use crate::enumerate::{EnumerationConfig, EnumerationStats, PathEnumerator};
use crate::mcmm::BatchOutcome;
use crate::path::TruePath;
use crate::scenario::{Scenario, ScenarioError};
use crate::sdc::{parse_sdc, Constraints, SdcError};
use crate::slack::{slack_report, SlackReport};

/// Errors from assembling or running an analysis.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The circuit name is not in the benchmark catalog.
    UnknownBenchmark(String),
    /// The benchmark file failed to parse or map.
    Netlist(NetlistError),
    /// Library characterization failed.
    Characterization(CharError),
    /// The attached SDC text failed to parse against the circuit.
    Sdc(SdcError),
    /// The scenario set is malformed (bad corner/mode spec, empty set).
    Scenario(ScenarioError),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::UnknownBenchmark(name) => write!(f, "unknown benchmark {name:?}"),
            AnalysisError::Netlist(e) => write!(f, "{e}"),
            AnalysisError::Characterization(e) => write!(f, "{e}"),
            AnalysisError::Sdc(e) => write!(f, "{e}"),
            AnalysisError::Scenario(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<NetlistError> for AnalysisError {
    fn from(e: NetlistError) -> Self {
        AnalysisError::Netlist(e)
    }
}

impl From<CharError> for AnalysisError {
    fn from(e: CharError) -> Self {
        AnalysisError::Characterization(e)
    }
}

impl From<SdcError> for AnalysisError {
    fn from(e: SdcError) -> Self {
        AnalysisError::Sdc(e)
    }
}

impl From<ScenarioError> for AnalysisError {
    fn from(e: ScenarioError) -> Self {
        AnalysisError::Scenario(e)
    }
}

/// Where the slack requirement of a [`SlackOutcome`] came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequiredSource {
    /// Set explicitly on the request.
    Explicit,
    /// Derived from the attached SDC constraints (tightest output
    /// requirement).
    Sdc,
    /// Nothing was specified: 90 % of the structural worst arrival, which
    /// is guaranteed to expose the critical region.
    Default,
}

/// Builder describing one analysis invocation — a single scenario for
/// [`AnalysisRequest::run`], or a whole MCMM scenario set for
/// [`AnalysisRequest::run_batch`]. All setters are chainable; the
/// defaults reproduce the engine's standard configuration (nominal 90 nm,
/// unconstrained mode, one thread, compiled kernels, 60 ps input slew).
///
/// The operating point and constraints live in typed [`Scenario`]s
/// (corner = [`crate::CornerDef`], mode = [`crate::Mode`]); the legacy corner/SDC
/// setters remain as deprecated shims that rewrite the primary scenario.
#[derive(Clone, Debug)]
pub struct AnalysisRequest {
    pub(crate) circuit: String,
    pub(crate) netlist_override: Option<Netlist>,
    /// The scenario set; single-scenario flows use `scenarios[0]`.
    pub(crate) scenarios: Vec<Scenario>,
    /// Whether a deprecated `.corner()` call pinned the primary corner
    /// (so a later `.tech()` keeps the explicit point, as the old
    /// resolve-at-prepare semantics did).
    primary_corner_explicit: bool,
    pub(crate) n_worst: Option<usize>,
    /// Worker threads *inside* each scenario's enumeration.
    pub(crate) threads: usize,
    /// Concurrent scenario jobs in [`AnalysisRequest::run_batch`].
    pub(crate) batch_threads: usize,
    pub(crate) compile_kernels: bool,
    pub(crate) bitsim: bool,
    pub(crate) learning: bool,
    /// Path cap applied only in full-enumeration mode (no `n_worst`).
    pub(crate) full_enum_path_cap: Option<usize>,
    /// Override for the global justification-decision budget.
    pub(crate) max_decisions: Option<u64>,
    pub(crate) input_slew: f64,
    pub(crate) char_config: CharConfig,
    pub(crate) cache_dir: PathBuf,
    pub(crate) obs: Observer,
}

impl AnalysisRequest {
    /// A request for a catalog circuit with default settings.
    pub fn new(circuit: &str) -> Self {
        AnalysisRequest {
            circuit: circuit.to_string(),
            netlist_override: None,
            scenarios: vec![Scenario::nominal()],
            primary_corner_explicit: false,
            n_worst: None,
            threads: 1,
            batch_threads: 1,
            compile_kernels: true,
            bitsim: true,
            learning: true,
            full_enum_path_cap: None,
            max_decisions: None,
            input_slew: 60.0,
            char_config: CharConfig::standard(),
            cache_dir: PathBuf::from(".char-cache"),
            obs: Observer::disabled(),
        }
    }

    /// Analyzes the given already-mapped netlist instead of resolving the
    /// circuit name from the benchmark catalog (the name is kept for
    /// reporting). This is how the timing daemon re-analyzes an ECO-edited
    /// netlist that exists in no catalog.
    pub fn with_netlist(mut self, nl: Netlist) -> Self {
        self.netlist_override = Some(nl);
        self
    }

    /// Replaces the whole scenario set (the MCMM matrix). Scenario 0 is
    /// the *primary* scenario, the one single-scenario flows
    /// ([`AnalysisRequest::prepare`], [`AnalysisRequest::run`]) analyze.
    /// An empty set is reported at prepare/run time as
    /// [`AnalysisError::Scenario`].
    pub fn scenarios(mut self, set: Vec<Scenario>) -> Self {
        self.scenarios = set;
        self.primary_corner_explicit = true;
        self
    }

    /// Replaces the scenario set with a single scenario.
    pub fn scenario(self, s: Scenario) -> Self {
        self.scenarios(vec![s])
    }

    /// The scenario set this request will analyze.
    pub fn scenario_set(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Sets the number of concurrent scenario jobs
    /// [`AnalysisRequest::run_batch`] fans out (default 1). Independent
    /// of [`AnalysisRequest::threads`], which controls the workers
    /// *inside* one scenario's enumeration; per-scenario results are
    /// byte-identical at any combination of the two.
    pub fn batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = threads.max(1);
        self
    }

    /// Selects the technology node (default 90 nm), keeping an
    /// explicitly set corner.
    #[deprecated(note = "use scenarios()/scenario() with a typed CornerDef instead")]
    pub fn tech(mut self, tech: Technology) -> Self {
        let primary = self.primary_mut();
        if primary.corner.name == primary.corner.tech.name {
            primary.corner.name = tech.name.clone();
        }
        primary.corner.tech = tech;
        if !self.primary_corner_explicit {
            let primary = self.primary_mut();
            primary.corner.corner = Corner::nominal(&primary.corner.tech);
        }
        self
    }

    /// Overrides the operating corner (default: nominal of the
    /// technology).
    #[deprecated(note = "use scenarios()/scenario() with a typed CornerDef instead")]
    pub fn corner(mut self, corner: Corner) -> Self {
        let primary = self.primary_mut();
        primary.corner.corner = corner;
        primary.corner.name = format!("{},{}", corner.temperature, corner.vdd);
        self.primary_corner_explicit = true;
        self
    }

    fn primary_mut(&mut self) -> &mut Scenario {
        if self.scenarios.is_empty() {
            self.scenarios.push(Scenario::nominal());
        }
        &mut self.scenarios[0]
    }

    /// Restricts enumeration to the N worst paths (`None` = enumerate
    /// everything, subject to [`AnalysisRequest::full_enum_path_cap`]).
    pub fn n_worst(mut self, n: Option<usize>) -> Self {
        self.n_worst = n;
        self
    }

    /// Sets the enumeration worker-thread count (default 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the corner-compiled delay kernels (default on).
    pub fn compiled_kernels(mut self, on: bool) -> Self {
        self.compile_kernels = on;
        self
    }

    /// Enables or disables the bit-parallel justification pre-filter
    /// (default on). Never changes any computed result.
    pub fn bitsim(mut self, on: bool) -> Self {
        self.bitsim = on;
        self
    }

    /// Enables or disables nogood learning and dominance pruning in the
    /// sensitization search (default on). Refutation-only: never changes
    /// the emitted path set.
    pub fn learning(mut self, on: bool) -> Self {
        self.learning = on;
        self
    }

    /// Caps emitted paths in full-enumeration mode (ignored when
    /// `n_worst` is set). Front ends use this as a safety valve.
    pub fn full_enum_path_cap(mut self, cap: Option<usize>) -> Self {
        self.full_enum_path_cap = cap;
        self
    }

    /// Overrides the global justification-decision budget (`None` keeps
    /// the [`EnumerationConfig`] default). Budget-truncated runs report
    /// `truncated` in their stats; consumers that need exact results
    /// (splice cross-checks, byte-identity oracles) must check that flag.
    pub fn max_decisions(mut self, budget: Option<u64>) -> Self {
        self.max_decisions = budget;
        self
    }

    /// Sets the primary-input transition time, ps (default 60).
    pub fn input_slew(mut self, slew: f64) -> Self {
        self.input_slew = slew;
        self
    }

    /// Sets an explicit required arrival time at the outputs, ps (for
    /// slack analysis). Takes precedence over SDC-derived requirements.
    #[deprecated(note = "use scenarios()/scenario() with Mode::with_required instead")]
    pub fn required(mut self, ps: f64) -> Self {
        self.primary_mut().mode.required = Some(ps);
        self
    }

    /// Attaches SDC constraint text, parsed against the circuit during
    /// [`AnalysisRequest::prepare`].
    #[deprecated(note = "use scenarios()/scenario() with Mode::with_sdc instead")]
    pub fn sdc(mut self, text: &str) -> Self {
        self.primary_mut().mode.sdc = Some(text.to_string());
        self
    }

    /// Overrides the characterization configuration (default
    /// [`CharConfig::standard`]).
    pub fn char_config(mut self, cfg: CharConfig) -> Self {
        self.char_config = cfg;
        self
    }

    /// Overrides the characterization cache directory (default
    /// `.char-cache`).
    pub fn cache_dir(mut self, dir: PathBuf) -> Self {
        self.cache_dir = dir;
        self
    }

    /// Attaches an observability handle; all phases of the analysis record
    /// spans and metrics into it. Never changes what is computed.
    pub fn observer(mut self, obs: Observer) -> Self {
        self.obs = obs;
        self
    }

    /// Resolves the request into a reusable [`AnalysisContext`]: catalog
    /// lookup, technology mapping, (cached) characterization, constraint
    /// parsing, and the assembled [`EnumerationConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when the circuit is unknown, fails to
    /// map, characterization fails, or the SDC text does not parse.
    pub fn prepare(&self) -> Result<AnalysisContext, AnalysisError> {
        let primary = self
            .scenarios
            .first()
            .ok_or(AnalysisError::Scenario(ScenarioError::EmptySet))?
            .clone();
        let tech = primary.corner.tech.clone();
        let corner = primary.corner.corner;
        let root = self.obs.span_with(
            "analysis",
            vec![
                ("circuit", self.circuit.clone()),
                ("tech", tech.name.clone()),
                ("threads", self.threads.to_string()),
                ("kernels", self.compile_kernels.to_string()),
                ("bitsim", self.bitsim.to_string()),
                ("learning", self.learning.to_string()),
            ],
        );
        let (lib, netlist) = {
            let _load = root.child("load");
            let lib = Library::standard();
            let nl = match &self.netlist_override {
                Some(nl) => nl.clone(),
                None => catalog::mapped(&self.circuit, &lib)?
                    .ok_or_else(|| AnalysisError::UnknownBenchmark(self.circuit.clone()))?,
            };
            (lib, nl)
        };
        let timing = {
            let span = root.child("characterize");
            sta_charlib::characterize_cached_observed(
                &lib,
                &tech,
                &self.char_config,
                &self.cache_dir,
                &self.obs,
                span.id(),
            )?
        };
        let constraints = match &primary.mode.sdc {
            Some(text) => Some(parse_sdc(text, &netlist)?),
            None => None,
        };
        let mut cfg = EnumerationConfig::new(corner)
            .with_threads(self.threads)
            .with_compiled_kernels(self.compile_kernels)
            .with_bitsim(self.bitsim)
            .with_learning(self.learning)
            .with_observer(self.obs.clone());
        cfg.input_slew = self.input_slew;
        if let Some(budget) = self.max_decisions {
            cfg.max_decisions = budget;
        }
        match self.n_worst {
            Some(n) => cfg = cfg.with_n_worst(n),
            None => cfg.max_paths = self.full_enum_path_cap,
        }
        Ok(AnalysisContext {
            circuit: self.circuit.clone(),
            lib,
            netlist,
            timing,
            corner,
            constraints,
            required: primary.mode.required,
            cfg,
            obs: self.obs.clone(),
            root,
        })
    }

    /// [`AnalysisRequest::prepare`] followed by a full true-path
    /// enumeration.
    ///
    /// # Errors
    ///
    /// Same as [`AnalysisRequest::prepare`].
    pub fn run(&self) -> Result<AnalysisOutcome, AnalysisError> {
        let ctx = self.prepare()?;
        let t0 = std::time::Instant::now();
        let run = ctx.enumerate();
        let elapsed_s = t0.elapsed().as_secs_f64();
        Ok(ctx.into_outcome(run, elapsed_s))
    }

    /// Runs the whole scenario set as one MCMM batch: scenario-invariant
    /// work (netlist load, per-technology characterization, bitsim
    /// schedule, per-corner kernel compilation, per-mode SDC parsing) is
    /// done exactly once, then the N×M scenario jobs fan out over
    /// [`AnalysisRequest::batch_threads`] work-stealing workers. Every
    /// scenario's paths are byte-identical to an independent
    /// [`AnalysisRequest::run`] of that scenario at any thread count; the
    /// merged slack view is canonical in the scenario set (see
    /// [`crate::MergedSlackReport`]).
    ///
    /// # Errors
    ///
    /// Same as [`AnalysisRequest::prepare`], plus
    /// [`AnalysisError::Scenario`] for an empty scenario set.
    pub fn run_batch(&self) -> Result<BatchOutcome, AnalysisError> {
        crate::mcmm::run_batch(self)
    }
}

/// Everything a resolved request provides: the mapped circuit, its timing
/// library, the operating corner, parsed constraints, and the enumeration
/// configuration. Flows that drive their own analysis (the two-step
/// baseline, lint) borrow these; [`AnalysisContext::enumerate`] and
/// [`AnalysisContext::slack`] run the standard analyses.
pub struct AnalysisContext {
    /// Requested circuit name.
    pub circuit: String,
    /// The standard cell library.
    pub lib: Library,
    /// Technology-mapped netlist.
    pub netlist: Netlist,
    /// Characterized timing models.
    pub timing: TimingLibrary,
    /// Operating corner of the analysis.
    pub corner: Corner,
    /// Parsed SDC constraints, when the request attached any.
    pub constraints: Option<Constraints>,
    required: Option<f64>,
    cfg: EnumerationConfig,
    obs: Observer,
    /// Root span of the whole analysis; ends when the context drops.
    root: SpanGuard,
}

/// Result of one enumeration pass through the context.
pub struct EnumerationRun {
    /// Enumerated true paths, canonically ordered (see
    /// [`PathEnumerator::run`]).
    pub paths: Vec<TruePath>,
    /// Engine statistics.
    pub stats: EnumerationStats,
    /// `(arcs, coefficients)` of the compiled kernel table, when kernel
    /// compilation was enabled.
    pub kernel: Option<(usize, usize)>,
}

/// Result of a structural slack analysis through the context.
pub struct SlackOutcome {
    /// The per-net slack report.
    pub report: SlackReport,
    /// Worst structural arrival over the primary outputs, ps.
    pub structural_worst: f64,
    /// The requirement the report was computed against, ps.
    pub required: f64,
    /// How the requirement was chosen.
    pub required_source: RequiredSource,
}

impl std::fmt::Debug for AnalysisContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisContext")
            .field("circuit", &self.circuit)
            .field("corner", &self.corner)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl AnalysisContext {
    /// The enumeration configuration this context will analyze with.
    pub fn config(&self) -> &EnumerationConfig {
        &self.cfg
    }

    /// The primary-input slew of the analysis, ps.
    pub fn input_slew(&self) -> f64 {
        self.cfg.input_slew
    }

    /// Runs the true-path enumeration (kernel compilation and the search
    /// itself are recorded as child spans of the analysis).
    pub fn enumerate(&self) -> EnumerationRun {
        self.enumerate_inner(None)
    }

    /// Like [`AnalysisContext::enumerate`], but injects `store` as the
    /// run's shared nogood table so callers can audit what was learned
    /// afterwards (see the lint `LEARN` rules). Has no effect on the
    /// result when learning is disabled in the configuration.
    pub fn enumerate_with_nogood_store(
        &self,
        store: std::sync::Arc<crate::learn::NogoodStore>,
    ) -> EnumerationRun {
        self.enumerate_inner(Some(store))
    }

    fn enumerate_inner(
        &self,
        store: Option<std::sync::Arc<crate::learn::NogoodStore>>,
    ) -> EnumerationRun {
        let enumr = {
            let _compile = self.root.child("compile");
            let mut e =
                PathEnumerator::new(&self.netlist, &self.lib, &self.timing, self.cfg.clone());
            if let Some(store) = store {
                e.set_nogood_store(store);
            }
            e
        };
        let kernel = enumr.kernel().map(|k| {
            k.record_metrics(&self.obs);
            (k.num_arcs(), k.num_coefficients())
        });
        let (paths, stats) = {
            let _enumerate = self.root.child("enumerate");
            enumr.run()
        };
        EnumerationRun {
            paths,
            stats,
            kernel,
        }
    }

    /// Runs the structural slack analysis. The requirement is resolved in
    /// order: explicit request value, tightest SDC output requirement,
    /// then the 90 %-of-structural-worst default.
    pub fn slack(&self) -> SlackOutcome {
        let _slack = self.root.child("slack");
        let probe = slack_report(
            &self.netlist,
            &self.timing,
            self.corner,
            self.cfg.input_slew,
            0.0,
        );
        let structural_worst = probe.timing.worst_arrival(&self.netlist);
        let sdc_required = self.constraints.as_ref().and_then(|c| {
            self.netlist
                .outputs()
                .iter()
                .filter_map(|&o| c.required_at(o))
                .min_by(f64::total_cmp)
        });
        let (required, required_source) = match (self.required, sdc_required) {
            (Some(r), _) => (r, RequiredSource::Explicit),
            (None, Some(r)) => (r, RequiredSource::Sdc),
            (None, None) => (structural_worst * 0.9, RequiredSource::Default),
        };
        let report = slack_report(
            &self.netlist,
            &self.timing,
            self.corner,
            self.cfg.input_slew,
            required,
        );
        crate::arrival::record_bounds_metrics(&self.obs, &self.netlist, &report.timing);
        SlackOutcome {
            report,
            structural_worst,
            required,
            required_source,
        }
    }

    /// Consumes the context (ending the analysis root span) into a
    /// finished outcome.
    pub fn into_outcome(self, run: EnumerationRun, elapsed_s: f64) -> AnalysisOutcome {
        AnalysisOutcome {
            circuit: self.circuit,
            lib: self.lib,
            netlist: self.netlist,
            timing: self.timing,
            corner: self.corner,
            input_slew: self.cfg.input_slew,
            paths: run.paths,
            stats: run.stats,
            kernel: run.kernel,
            elapsed_s,
        }
    }
}

/// A finished analysis: the resolved inputs plus the enumerated paths.
#[derive(Clone, Debug)]
pub struct AnalysisOutcome {
    /// Requested circuit name.
    pub circuit: String,
    /// The standard cell library.
    pub lib: Library,
    /// Technology-mapped netlist.
    pub netlist: Netlist,
    /// Characterized timing models.
    pub timing: TimingLibrary,
    /// Operating corner of the analysis.
    pub corner: Corner,
    /// Primary-input slew, ps.
    pub input_slew: f64,
    /// Enumerated true paths, canonically ordered.
    pub paths: Vec<TruePath>,
    /// Engine statistics.
    pub stats: EnumerationStats,
    /// `(arcs, coefficients)` of the compiled kernel table, if enabled.
    pub kernel: Option<(usize, usize)>,
    /// Wall-clock enumeration time, seconds.
    pub elapsed_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CornerDef, Mode};

    fn cache_dir() -> PathBuf {
        // Share one fast-config cache across the facade tests.
        std::env::temp_dir().join("sta-analysis-facade-cache")
    }

    fn fast_request(circuit: &str) -> AnalysisRequest {
        AnalysisRequest::new(circuit)
            .char_config(CharConfig::fast())
            .cache_dir(cache_dir())
    }

    #[test]
    fn unknown_circuit_is_reported() {
        let err = fast_request("not-a-circuit").run().unwrap_err();
        assert_eq!(err, AnalysisError::UnknownBenchmark("not-a-circuit".into()));
        assert!(err.to_string().contains("not-a-circuit"));
    }

    #[test]
    fn facade_matches_direct_engine_use() {
        let outcome = fast_request("c17").run().unwrap();
        assert!(outcome.kernel.is_some());
        // Reproduce by hand: same library, same config.
        let lib = Library::standard();
        let nl = catalog::mapped("c17", &lib).unwrap().unwrap();
        let tlib = sta_charlib::characterize_cached(
            &lib,
            &Technology::n90(),
            &CharConfig::fast(),
            &cache_dir(),
        )
        .unwrap();
        let cfg = EnumerationConfig::new(Corner::nominal(&Technology::n90()));
        let (paths, _) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
        assert_eq!(outcome.paths, paths);
        assert_eq!(outcome.stats.paths, paths.len());
    }

    #[test]
    fn observer_attachment_changes_nothing_and_records_phases() {
        let plain = fast_request("c17").n_worst(Some(5)).run().unwrap();
        let obs = Observer::enabled();
        let observed = fast_request("c17")
            .n_worst(Some(5))
            .observer(obs.clone())
            .run()
            .unwrap();
        assert_eq!(plain.paths, observed.paths);
        let tree = obs.span_tree();
        assert_eq!(tree.len(), 1);
        assert!(tree[0]
            .structure()
            .starts_with("analysis(load,characterize"));
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.counters["enumerate.paths"], plain.stats.paths as u64);
        assert!(snap.gauges.contains_key("kernel.arcs"));
    }

    fn nominal_with_mode(mode: Mode) -> Scenario {
        Scenario::new(CornerDef::nominal(Technology::n90()), mode)
    }

    #[test]
    fn slack_requirement_resolution_order() {
        let ctx = fast_request("c17").prepare().unwrap();
        let default = ctx.slack();
        assert_eq!(default.required_source, RequiredSource::Default);
        assert!((default.required - default.structural_worst * 0.9).abs() < 1e-9);

        let explicit = fast_request("c17")
            .scenario(nominal_with_mode(Mode::with_required("m", 123.0)))
            .prepare()
            .unwrap();
        let s = explicit.slack();
        assert_eq!(
            (s.required, s.required_source),
            (123.0, RequiredSource::Explicit)
        );

        let outputs_constrained = fast_request("c17")
            .scenario(nominal_with_mode(Mode::with_sdc(
                "func",
                "create_clock -period 500\n",
            )))
            .prepare()
            .unwrap();
        let s = outputs_constrained.slack();
        assert_eq!(
            (s.required, s.required_source),
            (500.0, RequiredSource::Sdc)
        );
    }

    #[test]
    fn bad_sdc_surfaces_as_typed_error() {
        let err = fast_request("c17")
            .scenario(nominal_with_mode(Mode::with_sdc(
                "bad",
                "set_output_delay 100 [get_ports nope]\n",
            )))
            .prepare()
            .unwrap_err();
        assert!(matches!(err, AnalysisError::Sdc(_)));
    }

    #[test]
    fn empty_scenario_set_is_a_typed_error() {
        let err = fast_request("c17").scenarios(Vec::new()).run().unwrap_err();
        assert_eq!(
            err,
            AnalysisError::Scenario(crate::scenario::ScenarioError::EmptySet)
        );
        let err = fast_request("c17")
            .scenarios(Vec::new())
            .run_batch()
            .unwrap_err();
        assert!(matches!(err, AnalysisError::Scenario(_)));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_rewrite_the_primary_scenario() {
        // tech() then corner(): explicit corner survives.
        let req = fast_request("c17")
            .corner(Corner {
                temperature: 75.0,
                vdd: 0.95,
            })
            .tech(Technology::n65());
        let primary = &req.scenario_set()[0];
        assert_eq!(primary.corner.tech.name, "65nm");
        assert_eq!(primary.corner.corner.temperature, 75.0);
        // tech() alone: corner follows to nominal of the node.
        let req = fast_request("c17").tech(Technology::n130());
        let primary = &req.scenario_set()[0];
        assert_eq!(primary.corner.corner, Corner::nominal(&Technology::n130()));
        assert_eq!(primary.corner.name, "130nm");
        // sdc()/required() land in the primary mode.
        let req = fast_request("c17")
            .sdc("create_clock -period 500\n")
            .required(450.0);
        let primary = &req.scenario_set()[0];
        assert_eq!(primary.mode.required, Some(450.0));
        assert!(primary.mode.sdc.as_deref().unwrap().contains("500"));
    }

    #[test]
    fn batch_matches_independent_single_runs() {
        let corners = vec![
            CornerDef::nominal(Technology::n90()),
            CornerDef::parse("slow", &Technology::n90()).unwrap(),
        ];
        let modes = vec![
            Mode::unconstrained(),
            Mode::with_sdc("func", "create_clock -period 400\n"),
        ];
        let set = Scenario::matrix(&corners, &modes);
        let batch = fast_request("c17")
            .scenarios(set.clone())
            .run_batch()
            .unwrap();
        assert_eq!(batch.scenarios.len(), 4);
        for (i, s) in set.iter().enumerate() {
            let single = fast_request("c17").scenario(s.clone()).run().unwrap();
            assert_eq!(batch.scenarios[i].paths, single.paths, "{}", s.name());
            assert_eq!(
                batch.certificates(i).to_json(),
                crate::report::CertificateSet::new(
                    &single.netlist,
                    single.input_slew,
                    single.paths
                )
                .to_json(),
                "{}",
                s.name()
            );
        }
        // The merged report is canonical under submission-order permutation.
        let mut reversed_set = set;
        reversed_set.reverse();
        let reversed = fast_request("c17")
            .scenarios(reversed_set)
            .run_batch()
            .unwrap();
        assert_eq!(batch.merged, reversed.merged);
        assert_eq!(batch.merged.to_json(), reversed.merged.to_json());
        assert_eq!(batch.merged.endpoints.len(), batch.netlist.outputs().len());
    }
}
