//! A small SDC (Synopsys Design Constraints) subset: enough to drive the
//! slack analysis from the constraint files real flows already have.
//!
//! Supported commands:
//!
//! ```text
//! create_clock -period 1200 [-name clk]
//! set_input_delay  120 [get_ports a]     # or: set_input_delay 120 a
//! set_output_delay 200 [get_ports z]
//! set_max_delay 900 -to [get_ports z]
//! ```
//!
//! Everything else (including `-from`/`-through` filters) is rejected with
//! a precise error rather than silently ignored — constraint files must
//! not lie.

use std::collections::HashMap;

use sta_netlist::{NetId, Netlist};

/// Parsed constraint set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Constraints {
    /// Clock period, ps (`create_clock -period`).
    pub clock_period: Option<f64>,
    /// Extra arrival at specific inputs, ps.
    pub input_delays: HashMap<NetId, f64>,
    /// Required margin before the period at specific outputs, ps.
    pub output_delays: HashMap<NetId, f64>,
    /// Per-output maximum-delay overrides, ps.
    pub max_delays: HashMap<NetId, f64>,
}

impl Constraints {
    /// The required arrival time at `output`: the tightest of
    /// `clock_period − output_delay` and any `set_max_delay` override.
    /// `None` when nothing constrains the output.
    pub fn required_at(&self, output: NetId) -> Option<f64> {
        let from_clock = self
            .clock_period
            .map(|p| p - self.output_delays.get(&output).copied().unwrap_or(0.0));
        let from_max = self.max_delays.get(&output).copied();
        match (from_clock, from_max) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Extra arrival budget consumed at `input`.
    pub fn input_delay(&self, input: NetId) -> f64 {
        self.input_delays.get(&input).copied().unwrap_or(0.0)
    }
}

/// SDC parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdcError {
    /// A statement used syntax outside the supported subset.
    Unsupported {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A referenced port does not exist in the netlist.
    UnknownPort {
        /// 1-based line number.
        line: usize,
        /// The port name.
        port: String,
    },
}

impl std::fmt::Display for SdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdcError::Unsupported { line, message } => {
                write!(f, "unsupported SDC at line {line}: {message}")
            }
            SdcError::UnknownPort { line, port } => {
                write!(f, "unknown port {port:?} at line {line}")
            }
        }
    }
}

impl std::error::Error for SdcError {}

/// Parses SDC text against a netlist (port names resolve to nets).
///
/// # Errors
///
/// Returns [`SdcError`] on unsupported constructs or unknown ports.
pub fn parse_sdc(text: &str, nl: &Netlist) -> Result<Constraints, SdcError> {
    let mut out = Constraints::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stmt = raw.split('#').next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        let tokens = tokenize(stmt);
        let cmd = tokens.first().map(String::as_str).unwrap_or("");
        match cmd {
            "create_clock" => {
                let period =
                    value_after(&tokens, "-period").ok_or_else(|| SdcError::Unsupported {
                        line,
                        message: "create_clock requires -period".into(),
                    })?;
                out.clock_period = Some(period);
            }
            "set_input_delay" | "set_output_delay" => {
                let (value, port) = delay_and_port(&tokens, line)?;
                let net = resolve_port(nl, &port, line)?;
                if cmd == "set_input_delay" {
                    out.input_delays.insert(net, value);
                } else {
                    out.output_delays.insert(net, value);
                }
            }
            "set_max_delay" => {
                let value: f64 = tokens.get(1).and_then(|t| t.parse().ok()).ok_or_else(|| {
                    SdcError::Unsupported {
                        line,
                        message: "set_max_delay requires a numeric value".into(),
                    }
                })?;
                let port =
                    value_token_after(&tokens, "-to").ok_or_else(|| SdcError::Unsupported {
                        line,
                        message: "set_max_delay supports only the -to form".into(),
                    })?;
                let net = resolve_port(nl, &port, line)?;
                out.max_delays.insert(net, value);
            }
            other => {
                return Err(SdcError::Unsupported {
                    line,
                    message: format!("command {other:?} is outside the subset"),
                })
            }
        }
    }
    Ok(out)
}

/// Splits an SDC statement into tokens, flattening `[get_ports x]` into
/// the port name.
fn tokenize(stmt: &str) -> Vec<String> {
    let cleaned = stmt.replace(['[', ']'], " ");
    let mut tokens: Vec<String> = cleaned.split_whitespace().map(str::to_string).collect();
    // Drop get_ports/get_pins markers; the following token is the name.
    tokens.retain(|t| t != "get_ports" && t != "get_pins");
    tokens
}

fn value_after(tokens: &[String], flag: &str) -> Option<f64> {
    let i = tokens.iter().position(|t| t == flag)?;
    tokens.get(i + 1)?.parse().ok()
}

fn value_token_after(tokens: &[String], flag: &str) -> Option<String> {
    let i = tokens.iter().position(|t| t == flag)?;
    tokens.get(i + 1).cloned()
}

fn delay_and_port(tokens: &[String], line: usize) -> Result<(f64, String), SdcError> {
    let value: f64 =
        tokens
            .get(1)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| SdcError::Unsupported {
                line,
                message: "expected a numeric delay".into(),
            })?;
    let port = tokens
        .iter()
        .skip(2)
        .find(|t| !t.starts_with('-'))
        .cloned()
        .ok_or_else(|| SdcError::Unsupported {
            line,
            message: "expected a port name".into(),
        })?;
    Ok((value, port))
}

fn resolve_port(nl: &Netlist, port: &str, line: usize) -> Result<NetId, SdcError> {
    nl.net_by_name(port).ok_or_else(|| SdcError::UnknownPort {
        line,
        port: port.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::{GateKind, PrimOp};

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        nl
    }

    #[test]
    fn parses_the_subset() {
        let nl = tiny();
        let sdc = "\
# constraints
create_clock -period 1200 -name clk
set_input_delay 100 [get_ports a]
set_output_delay 150 [get_ports z]
set_max_delay 900 -to [get_ports z]
";
        let c = parse_sdc(sdc, &nl).unwrap();
        assert_eq!(c.clock_period, Some(1200.0));
        let a = nl.net_by_name("a").unwrap();
        let z = nl.net_by_name("z").unwrap();
        assert_eq!(c.input_delay(a), 100.0);
        // required = min(period − out_delay, max_delay) = min(1050, 900).
        assert_eq!(c.required_at(z), Some(900.0));
    }

    #[test]
    fn required_without_max_delay_uses_the_clock() {
        let nl = tiny();
        let c = parse_sdc("create_clock -period 800\nset_output_delay 50 z\n", &nl).unwrap();
        let z = nl.net_by_name("z").unwrap();
        assert_eq!(c.required_at(z), Some(750.0));
        // Unconstrained output: falls back to the bare period.
        let a = nl.net_by_name("a").unwrap();
        assert_eq!(c.required_at(a), Some(800.0));
    }

    #[test]
    fn rejects_unknown_ports_and_commands() {
        let nl = tiny();
        let err = parse_sdc("set_input_delay 10 nope\n", &nl).unwrap_err();
        assert!(matches!(err, SdcError::UnknownPort { port, .. } if port == "nope"));
        let err = parse_sdc("set_false_path -from a\n", &nl).unwrap_err();
        assert!(matches!(err, SdcError::Unsupported { .. }));
        let err = parse_sdc("create_clock\n", &nl).unwrap_err();
        assert!(matches!(err, SdcError::Unsupported { .. }));
    }
}
