//! True-path representation and reporting.

use serde::{Deserialize, Serialize};
use std::fmt;

use sta_cells::{Edge, Library, Polarity};
use sta_netlist::{GateId, NetId, Netlist};

/// One traversed timing arc of a path: which gate was entered through which
/// pin under which sensitization vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathArc {
    /// The gate traversed.
    pub gate: GateId,
    /// The input pin the path enters through.
    pub pin: u8,
    /// Index of the sensitization vector in the cell's vector list for
    /// this pin (0-based; `case = index + 1`).
    pub vector: usize,
    /// Arc polarity under that vector.
    pub polarity: Polarity,
}

/// Timing of one launch polarity of a path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LaunchTiming {
    /// Edge launched at the path source.
    pub launch_edge: Edge,
    /// Arrival time at the endpoint, ps.
    pub arrival: f64,
    /// Transition time at the endpoint, ps.
    pub slew: f64,
    /// Edge at the endpoint.
    pub final_edge: Edge,
    /// Per-gate delays along the path, ps.
    pub gate_delays: Vec<f64>,
}

/// The value assigned to a primary input by the sensitizing vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PiValue {
    /// The launched transition (the path source).
    Transition,
    /// Stable 0.
    Zero,
    /// Stable 1.
    One,
    /// Don't-care.
    X,
}

impl fmt::Display for PiValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PiValue::Transition => "T",
            PiValue::Zero => "0",
            PiValue::One => "1",
            PiValue::X => "X",
        })
    }
}

/// A sensitized true path: a gate sequence, the sensitization vectors in
/// force at every gate, the witness primary-input vector, and the timing of
/// each surviving launch polarity.
///
/// Paths with the same gate sequence but different vectors are distinct
/// (paper §IV.B) — that is the whole point of the tool.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TruePath {
    /// The source primary input.
    pub source: NetId,
    /// Nets along the path, from the source PI to the endpoint PO.
    pub nodes: Vec<NetId>,
    /// Traversed arcs (`nodes.len() == arcs.len() + 1`).
    pub arcs: Vec<PathArc>,
    /// Timing under a rising launch, if that polarity is sensitizable.
    pub rise: Option<LaunchTiming>,
    /// Timing under a falling launch, if that polarity is sensitizable.
    pub fall: Option<LaunchTiming>,
    /// Witness PI assignment, indexed like `Netlist::inputs()`.
    pub input_vector: Vec<PiValue>,
}

impl TruePath {
    /// The endpoint net.
    pub fn endpoint(&self) -> NetId {
        *self.nodes.last().expect("paths have at least one node")
    }

    /// The worst (largest) arrival over the surviving polarities.
    pub fn worst_arrival(&self) -> f64 {
        let r = self.rise.as_ref().map_or(f64::NEG_INFINITY, |t| t.arrival);
        let f = self.fall.as_ref().map_or(f64::NEG_INFINITY, |t| t.arrival);
        r.max(f)
    }

    /// Number of surviving launch polarities (1 or 2).
    pub fn num_polarities(&self) -> usize {
        usize::from(self.rise.is_some()) + usize::from(self.fall.is_some())
    }

    /// A structural key identifying the node sequence (ignoring vectors):
    /// used to group the emissions of one structural path.
    pub fn structural_key(&self) -> Vec<NetId> {
        self.nodes.clone()
    }

    /// A canonical total order on emitted paths: descending worst
    /// arrival, then source, node sequence, and traversed arcs
    /// (pin/vector). Two distinct emissions never compare equal — the
    /// (nodes, arcs) pair identifies one search branch — so sorting a
    /// result set by this order is deterministic regardless of the order
    /// the paths were discovered in. This is what makes parallel
    /// enumeration byte-identical to serial after the final sort.
    pub fn canonical_cmp(&self, other: &TruePath) -> std::cmp::Ordering {
        other
            .worst_arrival()
            .total_cmp(&self.worst_arrival())
            .then_with(|| self.source.index().cmp(&other.source.index()))
            .then_with(|| {
                self.nodes
                    .iter()
                    .map(|n| n.index())
                    .cmp(other.nodes.iter().map(|n| n.index()))
            })
            .then_with(|| {
                let key = |a: &PathArc| (a.gate.index(), a.pin, a.vector);
                self.arcs.iter().map(key).cmp(other.arcs.iter().map(key))
            })
    }

    /// Human-readable one-line description.
    pub fn describe(&self, nl: &Netlist, lib: &Library) -> String {
        let nodes: Vec<String> = self.nodes.iter().map(|&n| nl.net_label(n)).collect();
        let vecs: Vec<String> = self
            .arcs
            .iter()
            .map(|a| {
                let cell = match nl.gate(a.gate).kind() {
                    sta_netlist::GateKind::Cell(c) => lib.cell(c).name().to_string(),
                    sta_netlist::GateKind::Prim(op) => op.to_string(),
                };
                format!("{cell}/case{}", a.vector + 1)
            })
            .collect();
        format!(
            "{} [{}] worst {:.1} ps",
            nodes.join("-"),
            vecs.join(","),
            self.worst_arrival()
        )
    }

    /// Formats the witness input vector like the paper's Table 5 rows,
    /// e.g. `N1=F, N2=1, N3=X`.
    pub fn input_vector_string(&self, nl: &Netlist, launch: Edge) -> String {
        nl.inputs()
            .iter()
            .zip(&self.input_vector)
            .map(|(&n, v)| {
                let val = match (v, launch) {
                    (PiValue::Transition, Edge::Rise) => "R".to_string(),
                    (PiValue::Transition, Edge::Fall) => "F".to_string(),
                    (other, _) => other.to_string(),
                };
                format!("{}={}", nl.net_label(n), val)
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Groups emitted paths by their structural key (node sequence). Each
/// group holds every sensitization-vector variant of one physical path —
/// the unit the paper's Table 6 calls a "path having more than one
/// sensitization vector".
pub fn group_by_structure(paths: &[TruePath]) -> Vec<PathGroup<'_>> {
    use std::collections::HashMap;
    let mut map: HashMap<&[NetId], Vec<&TruePath>> = HashMap::new();
    for p in paths {
        map.entry(&p.nodes).or_default().push(p);
    }
    let mut groups: Vec<PathGroup<'_>> = map
        .into_iter()
        .map(|(nodes, variants)| PathGroup { nodes, variants })
        .collect();
    groups.sort_by(|a, b| b.worst_arrival().total_cmp(&a.worst_arrival()));
    groups
}

/// All vector-variants of one structural path (see [`group_by_structure`]).
#[derive(Clone, Debug)]
pub struct PathGroup<'a> {
    /// The shared node sequence.
    pub nodes: &'a [NetId],
    /// The emitted variants (≥ 1).
    pub variants: Vec<&'a TruePath>,
}

impl PathGroup<'_> {
    /// Whether this structural path has more than one sensitization
    /// vector.
    pub fn is_multi_vector(&self) -> bool {
        self.variants.len() > 1
    }

    /// The worst arrival over the variants.
    pub fn worst_arrival(&self) -> f64 {
        self.variants
            .iter()
            .map(|p| p.worst_arrival())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The variant achieving the worst arrival.
    ///
    /// # Panics
    ///
    /// Groups are never empty by construction.
    pub fn worst_variant(&self) -> &TruePath {
        self.variants
            .iter()
            .max_by(|a, b| a.worst_arrival().total_cmp(&b.worst_arrival()))
            .expect("groups are non-empty")
    }

    /// Spread of the variants' worst arrivals, as a fraction of the
    /// fastest variant (0 for single-vector groups).
    pub fn vector_spread(&self) -> f64 {
        let worst = self.worst_arrival();
        let best = self
            .variants
            .iter()
            .map(|p| p.worst_arrival())
            .fold(f64::INFINITY, f64::min);
        if best > 0.0 {
            (worst - best) / best
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> TruePath {
        TruePath {
            source: NetId::from_index(0),
            nodes: vec![NetId::from_index(0), NetId::from_index(3)],
            arcs: vec![PathArc {
                gate: GateId::from_index(0),
                pin: 0,
                vector: 1,
                polarity: Polarity::Inverting,
            }],
            rise: Some(LaunchTiming {
                launch_edge: Edge::Rise,
                arrival: 120.0,
                slew: 40.0,
                final_edge: Edge::Fall,
                gate_delays: vec![120.0],
            }),
            fall: None,
            input_vector: vec![PiValue::Transition, PiValue::One],
        }
    }

    #[test]
    fn accessors() {
        let p = dummy();
        assert_eq!(p.endpoint(), NetId::from_index(3));
        assert_eq!(p.worst_arrival(), 120.0);
        assert_eq!(p.num_polarities(), 1);
        assert_eq!(p.structural_key(), p.nodes);
    }

    #[test]
    fn grouping_collects_vector_variants() {
        let mut a = dummy();
        a.arcs[0].vector = 0;
        let mut b = dummy();
        b.arcs[0].vector = 1;
        b.rise.as_mut().unwrap().arrival = 150.0;
        let mut c = dummy();
        c.nodes = vec![NetId::from_index(1), NetId::from_index(3)];
        let paths = vec![a, b, c];
        let groups = group_by_structure(&paths);
        assert_eq!(groups.len(), 2);
        let multi = groups.iter().find(|g| g.is_multi_vector()).unwrap();
        assert_eq!(multi.variants.len(), 2);
        assert_eq!(multi.worst_arrival(), 150.0);
        assert_eq!(multi.worst_variant().arcs[0].vector, 1);
        assert!(multi.vector_spread() > 0.2);
        // Sorted worst-first.
        assert!(groups[0].worst_arrival() >= groups[1].worst_arrival());
    }

    #[test]
    fn canonical_order_is_total_on_distinct_emissions() {
        use std::cmp::Ordering;
        let a = dummy();
        // Same path compares equal to itself.
        assert_eq!(a.canonical_cmp(&a), Ordering::Equal);
        // Larger arrival sorts first.
        let mut slower = dummy();
        slower.rise.as_mut().unwrap().arrival = 200.0;
        assert_eq!(slower.canonical_cmp(&a), Ordering::Less);
        assert_eq!(a.canonical_cmp(&slower), Ordering::Greater);
        // Equal arrivals: the vector index breaks the tie deterministically.
        let mut other_vector = dummy();
        other_vector.arcs[0].vector = 0;
        assert_eq!(other_vector.canonical_cmp(&a), Ordering::Less);
        assert_eq!(a.canonical_cmp(&other_vector), Ordering::Greater);
    }

    #[test]
    fn vector_formatting() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("N1");
        let b = nl.add_input("N2");
        let _ = (a, b);
        let p = dummy();
        assert_eq!(p.input_vector_string(&nl, Edge::Fall), "N1=F, N2=1");
        assert_eq!(p.input_vector_string(&nl, Edge::Rise), "N1=R, N2=1");
    }
}
