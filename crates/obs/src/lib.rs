//! `sta-obs` — observability for the STA engines: spans, metrics, run
//! manifests.
//!
//! The crate is built around one invariant: **observation never perturbs
//! analysis**. Instrumented engines take an [`Observer`] handle; a
//! disabled observer (the default) turns every hook into a `None` branch,
//! and an enabled one records into side state only — no hook feeds
//! anything back into the computation, so path sets are byte-identical
//! with observability on or off.
//!
//! Three layers:
//!
//! - **Spans** ([`SpanGuard`], [`LocalSpans`], [`SpanNode`]): hierarchical
//!   wall-time phases with explicit parent/ordinal links, merged
//!   deterministically like the parallel enumerator's path merge, so the
//!   span *tree structure* is identical at any thread count.
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]): a registry of
//!   relaxed atomics behind cheap handles; hot loops fetch a handle once
//!   and update lock-free.
//! - **Run manifests** ([`RunManifest`]): one versioned JSON document per
//!   invocation — tool identity, command, config echo, span tree, metrics
//!   snapshot, path-set digest — validated in CI against a checked-in
//!   schema by the in-tree [`schema`] validator.
//!
//! [`Progress`] + [`Heartbeat`] add an optional stderr liveness line for
//! long enumerations, again fed only from read-only taps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manifest;
mod metrics;
mod progress;
mod recorder;
pub mod schema;
mod span;

pub use manifest::{
    digest_string, fnv1a64, git_revision, RunManifest, SessionCircuit, SessionManifest, ToolInfo,
};
pub use metrics::{Counter, Gauge, HistBucket, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use progress::{Heartbeat, Progress};
pub use recorder::Observer;
pub use span::{LocalSpans, SpanGuard, SpanNode};

/// Version of every JSON document this tool emits: run manifests and all
/// `--format json` CLI outputs carry it as `schema_version`. Bump on any
/// backwards-incompatible shape change.
pub const SCHEMA_VERSION: u32 = 1;
