//! A small metrics registry: counters, gauges and log-scale histograms.
//!
//! Handles are cheap `Arc` clones over atomics; hot code fetches a handle
//! once (outside the loop) and then updates it with relaxed atomic ops —
//! no lock is ever taken on the update path. A handle from a disabled
//! [`crate::Observer`] is inert: every operation is a branch on `None`.
//!
//! Histograms use base-2 geometric buckets (`[2^(i-1), 2^i)`), the classic
//! log-scale latency layout: 64 buckets cover 1 ns to ~584 years, and the
//! bucket *structure* is fixed, so metric snapshots from runs at different
//! thread counts stay structurally comparable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` (relaxed; no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge (relaxed store of the f64 bit pattern).
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

pub(crate) struct HistInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Fixed-point sum in 1/1024 units (exact for integral observations up
    /// to 2^43; good enough for latency bookkeeping).
    sum_milli: AtomicU64,
}

impl HistInner {
    pub(crate) fn new() -> Self {
        HistInner {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_milli: AtomicU64::new(0),
        }
    }
}

/// A log-scale (base-2 geometric) histogram.
#[derive(Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistInner>>);

impl Histogram {
    /// Records one observation (negative values clamp to 0).
    #[inline]
    pub fn observe(&self, v: f64) {
        let Some(h) = &self.0 else { return };
        let clamped = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let idx = bucket_of(clamped as u64);
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum_milli
            .fetch_add((clamped * 1024.0) as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let Some(h) = &self.0 else {
            return HistogramSnapshot::default();
        };
        let buckets = h
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then(|| HistBucket {
                    lo: if i == 0 {
                        0.0
                    } else {
                        (1u64 << (i - 1)) as f64
                    },
                    hi: if i == HIST_BUCKETS - 1 {
                        f64::INFINITY
                    } else {
                        (1u64 << i) as f64
                    },
                    count,
                })
            })
            .collect();
        HistogramSnapshot {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum_milli.load(Ordering::Relaxed) as f64 / 1024.0,
            buckets,
        }
    }
}

/// `[2^(i-1), 2^i)` bucket index of `v` (bucket 0 holds 0).
fn bucket_of(v: u64) -> usize {
    match v.checked_ilog2() {
        None => 0,
        Some(l) => ((l as usize) + 1).min(HIST_BUCKETS - 1),
    }
}

/// Point-in-time snapshot of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations (fixed-point accumulated, 1/1024 resolution).
    pub sum: f64,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<HistBucket>,
}

/// One non-empty histogram bucket `[lo, hi)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistBucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound (`inf` for the overflow bucket).
    pub hi: f64,
    /// Observations in the bucket.
    pub count: u64,
}

/// The shared registry: name → metric, names sorted (BTreeMap) so every
/// snapshot lists metrics in one deterministic order.
#[derive(Default)]
pub(crate) struct Registry {
    pub counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub histograms: Mutex<BTreeMap<String, Arc<HistInner>>>,
}

/// Point-in-time snapshot of the whole registry, as serialized into the
/// run manifest.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Every registered metric name, each prefixed with its kind — the
    /// *structural* identity of the snapshot (values erased), pinned by
    /// the observability golden tests.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        names.extend(self.counters.keys().map(|k| format!("counter:{k}")));
        names.extend(self.gauges.keys().map(|k| format!("gauge:{k}")));
        names.extend(self.histograms.keys().map(|k| format!("histogram:{k}")));
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_geometric() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::default();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(2.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::default();
        h.observe(10.0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn histogram_observes_into_log_buckets() {
        let h = Histogram(Some(Arc::new(HistInner::new())));
        for v in [0.0, 1.0, 3.0, 3.5, 1000.0, -2.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        // 0.0 and the clamped -2.0 land in bucket 0; 3.0/3.5 share [2,4).
        let b0 = snap.buckets.iter().find(|b| b.lo == 0.0).unwrap();
        assert_eq!(b0.count, 2);
        let b23 = snap.buckets.iter().find(|b| b.lo == 2.0).unwrap();
        assert_eq!(b23.count, 2);
        assert!((snap.sum - (1.0 + 3.0 + 3.5 + 1000.0)).abs() < 0.01);
    }
}
