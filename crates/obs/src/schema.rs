//! A minimal JSON-Schema subset validator.
//!
//! CI validates every emitted run manifest against the checked-in
//! `docs/manifest.schema.json` without network access or external
//! tooling, so the repository carries its own validator. The supported
//! subset — `type`, `required`, `properties`, `additionalProperties`,
//! `items`, `enum`, `minimum` — is exactly what the manifest schema uses;
//! unknown keywords are ignored, as JSON Schema prescribes.

use serde::Value;

/// Validates `doc` against `schema`. Returns every violation found, each
/// as `json-pointer: message`; an empty error list means the document
/// conforms.
///
/// # Errors
///
/// The collected violations, most-shallow first.
pub fn validate(schema: &Value, doc: &Value) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    check(schema, doc, "", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check(schema: &Value, doc: &Value, path: &str, errors: &mut Vec<String>) {
    let Value::Map(rules) = schema else {
        return; // a non-object schema constrains nothing
    };
    let rule = |name: &str| rules.iter().find(|(k, _)| k == name).map(|(_, v)| v);

    if let Some(ty) = rule("type") {
        if !type_matches(ty, doc) {
            errors.push(format!(
                "{}: expected type {}, got {}",
                pointer(path),
                type_name(ty),
                value_kind(doc)
            ));
            return; // further keyword checks would only cascade
        }
    }

    if let Some(Value::Seq(allowed)) = rule("enum") {
        if !allowed.iter().any(|v| json_eq(v, doc)) {
            errors.push(format!("{}: value not in enum", pointer(path)));
        }
    }

    if let Some(min) = rule("minimum") {
        if let (Some(bound), Some(actual)) = (as_f64(min), as_f64(doc)) {
            if actual < bound {
                errors.push(format!("{}: {actual} below minimum {bound}", pointer(path)));
            }
        }
    }

    if let Value::Map(fields) = doc {
        if let Some(Value::Seq(required)) = rule("required") {
            for req in required {
                if let Value::Str(name) = req {
                    if !fields.iter().any(|(k, _)| k == name) {
                        errors.push(format!(
                            "{}: missing required property \"{name}\"",
                            pointer(path)
                        ));
                    }
                }
            }
        }
        let props = rule("properties");
        for (key, value) in fields {
            let sub = props.and_then(|p| match p {
                Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            });
            let child_path = format!("{path}/{key}");
            match sub {
                Some(s) => check(s, value, &child_path, errors),
                None => match rule("additionalProperties") {
                    Some(Value::Bool(false)) => {
                        errors.push(format!("{}: unexpected property \"{key}\"", pointer(path)))
                    }
                    Some(s @ Value::Map(_)) => check(s, value, &child_path, errors),
                    _ => {}
                },
            }
        }
    }

    if let (Value::Seq(items), Some(item_schema)) = (doc, rule("items")) {
        for (i, item) in items.iter().enumerate() {
            check(item_schema, item, &format!("{path}/{i}"), errors);
        }
    }
}

fn type_matches(ty: &Value, doc: &Value) -> bool {
    match ty {
        Value::Str(name) => match name.as_str() {
            "object" => matches!(doc, Value::Map(_)),
            "array" => matches!(doc, Value::Seq(_)),
            "string" => matches!(doc, Value::Str(_)),
            "boolean" => matches!(doc, Value::Bool(_)),
            "null" => matches!(doc, Value::Null),
            "number" => as_f64(doc).is_some(),
            "integer" => match doc {
                Value::Int(_) | Value::UInt(_) => true,
                Value::Float(f) => f.fract() == 0.0,
                _ => false,
            },
            _ => true, // unknown type names constrain nothing
        },
        // e.g. "type": ["number", "null"]
        Value::Seq(alternatives) => alternatives.iter().any(|t| type_matches(t, doc)),
        _ => true,
    }
}

fn type_name(ty: &Value) -> String {
    match ty {
        Value::Str(s) => s.clone(),
        Value::Seq(ts) => ts.iter().map(type_name).collect::<Vec<_>>().join("|"),
        _ => "?".to_string(),
    }
}

fn value_kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "array",
        Value::Map(_) => "object",
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn json_eq(a: &Value, b: &Value) -> bool {
    match (as_f64(a), as_f64(b)) {
        (Some(x), Some(y)) => x == y,
        _ => match (a, b) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Str(x), Value::Str(y)) => x == y,
            (Value::Seq(x), Value::Seq(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(a, b)| json_eq(a, b))
            }
            (Value::Map(x), Value::Map(y)) => {
                x.len() == y.len()
                    && x.iter()
                        .all(|(k, v)| y.iter().any(|(k2, v2)| k == k2 && json_eq(v, v2)))
            }
            _ => false,
        },
    }
}

fn pointer(path: &str) -> &str {
    if path.is_empty() {
        "/"
    } else {
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::from_str::<Value>(s).unwrap()
    }

    #[test]
    fn accepts_conforming_document() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["schema_version", "tool"],
                "properties": {
                    "schema_version": {"type": "integer", "minimum": 1},
                    "tool": {
                        "type": "object",
                        "required": ["name"],
                        "properties": {"name": {"type": "string"}}
                    },
                    "spans": {"type": "array", "items": {"type": "object"}},
                    "digest": {"type": ["string", "null"]}
                },
                "additionalProperties": false
            }"#,
        );
        let doc = parse(
            r#"{"schema_version": 1,
                "tool": {"name": "sta-repro", "extra": true},
                "spans": [{}, {}],
                "digest": null}"#,
        );
        assert_eq!(validate(&schema, &doc), Ok(()));
    }

    #[test]
    fn reports_each_violation_with_a_pointer() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "schema_version": {"type": "integer", "minimum": 1},
                    "mode": {"enum": ["human", "json"]}
                },
                "additionalProperties": false
            }"#,
        );
        let doc = parse(r#"{"schema_version": 0, "mode": "xml", "bogus": 1}"#);
        let errs = validate(&schema, &doc).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.contains("missing required property \"tool\"")));
        assert!(errs
            .iter()
            .any(|e| e.contains("/schema_version") && e.contains("minimum")));
        assert!(errs
            .iter()
            .any(|e| e.contains("/mode") && e.contains("enum")));
        assert!(errs
            .iter()
            .any(|e| e.contains("unexpected property \"bogus\"")));
    }

    #[test]
    fn type_mismatch_stops_cascading() {
        let schema = parse(
            r#"{"type": "object", "properties": {"spans": {"type": "array", "items": {"type": "object", "required": ["name"]}}}}"#,
        );
        let doc = parse(r#"{"spans": [{"name": "a"}, {"nope": 1}, 3]}"#);
        let errs = validate(&schema, &doc).unwrap_err();
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().any(|e| e.starts_with("/spans/1:")));
        assert!(errs.iter().any(|e| e.starts_with("/spans/2:")));
    }

    #[test]
    fn integer_accepts_whole_floats() {
        let schema = parse(r#"{"type": "integer"}"#);
        assert_eq!(validate(&schema, &parse("3.0")), Ok(()));
        assert!(validate(&schema, &parse("3.5")).is_err());
    }
}
