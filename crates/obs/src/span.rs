//! Hierarchical wall-time spans with deterministic tree reconstruction.
//!
//! A span measures one phase of a run (`analyze` → `characterize` →
//! per-cell children, …) on the monotonic clock. Spans form an explicit
//! tree: children are created *from* their parent guard rather than
//! through thread-local ambient state, so the hierarchy — and therefore
//! the manifest's span tree — is a function of the call structure alone,
//! never of thread scheduling.
//!
//! Recording is two-phase, mirroring the deterministic path merge of the
//! parallel enumerator: hot sections record finished spans into a
//! [`LocalSpans`] buffer they own exclusively (no locks, no atomics beyond
//! the id counter), and the buffer is absorbed into the shared recorder
//! once, at a natural merge point. Each span carries an explicit ordinal
//! within its parent; [`build_tree`] sorts children by `(ord, id)`, so the
//! reconstructed tree is identical no matter which worker finished first.

use std::cell::Cell;

use serde::{Deserialize, Serialize};

use crate::recorder::Observer;

/// A finished span as stored in the recorder buffer.
#[derive(Clone, Debug)]
pub(crate) struct SpanRecord {
    /// Unique id (allocated from the recorder's atomic counter, > 0).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Position among the parent's children (sort key before `id`).
    pub ord: u64,
    /// Static span name (dotted-path convention, e.g. `enumerate.search`).
    pub name: &'static str,
    /// Key/value attributes (circuit name, corner, …).
    pub attrs: Vec<(&'static str, String)>,
    /// Start offset from the recorder epoch, ns (monotonic clock).
    pub start_ns: u64,
    /// Wall-clock duration, ns.
    pub duration_ns: u64,
}

/// One node of the reconstructed span tree, as serialized into the run
/// manifest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Key/value attributes.
    pub attrs: std::collections::BTreeMap<String, String>,
    /// Start offset from the run epoch, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub duration_ns: u64,
    /// Child spans in deterministic `(ord, id)` order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// The tree's *structure* — names and nesting, with every duration and
    /// attribute value erased. Two runs of the same request produce equal
    /// structures regardless of thread count or machine speed; the
    /// observability golden tests pin exactly this.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        self.write_structure(&mut out);
        out
    }

    fn write_structure(&self, out: &mut String) {
        out.push_str(&self.name);
        if !self.children.is_empty() {
            out.push('(');
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.write_structure(out);
            }
            out.push(')');
        }
    }
}

/// Builds the deterministic span forest from a flat record buffer.
pub(crate) fn build_tree(mut records: Vec<SpanRecord>) -> Vec<SpanNode> {
    records.sort_by_key(|r| (r.parent, r.ord, r.id));
    // Children buckets per parent id, already in deterministic order.
    let mut order: Vec<u64> = Vec::with_capacity(records.len());
    let mut by_parent: std::collections::HashMap<u64, Vec<SpanRecord>> =
        std::collections::HashMap::new();
    for r in records {
        if !by_parent.contains_key(&r.parent) {
            order.push(r.parent);
        }
        by_parent.entry(r.parent).or_default().push(r);
    }
    fn assemble(
        parent: u64,
        by_parent: &mut std::collections::HashMap<u64, Vec<SpanRecord>>,
    ) -> Vec<SpanNode> {
        let Some(children) = by_parent.remove(&parent) else {
            return Vec::new();
        };
        children
            .into_iter()
            .map(|r| SpanNode {
                name: r.name.to_string(),
                attrs: r
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                start_ns: r.start_ns,
                duration_ns: r.duration_ns,
                children: assemble(r.id, by_parent),
            })
            .collect()
    }
    let mut roots = assemble(0, &mut by_parent);
    // Orphans (a parent guard still open when the tree was snapshotted)
    // surface as additional roots rather than vanishing.
    while let Some(&p) = by_parent.keys().min() {
        roots.extend(assemble(p, &mut by_parent));
    }
    roots
}

/// An open span. Records itself into the observer when dropped (or via
/// [`SpanGuard::end`]); disabled observers hand out inert guards whose
/// whole lifecycle is a few branches.
pub struct SpanGuard {
    pub(crate) obs: Observer,
    /// 0 on disabled observers.
    pub(crate) id: u64,
    pub(crate) parent: u64,
    pub(crate) ord: u64,
    pub(crate) name: &'static str,
    pub(crate) attrs: Vec<(&'static str, String)>,
    pub(crate) start_ns: u64,
    /// Next child ordinal (implicit ordering for single-thread children).
    pub(crate) next_ord: Cell<u64>,
    pub(crate) ended: Cell<bool>,
}

impl SpanGuard {
    /// The span id — pass to [`LocalSpans::time`] to parent cross-thread
    /// children deterministically. 0 when the observer is disabled.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span (implicitly ordered after earlier children).
    pub fn child(&self, name: &'static str) -> SpanGuard {
        self.child_with(name, Vec::new())
    }

    /// Opens a child span carrying attributes.
    pub fn child_with(&self, name: &'static str, attrs: Vec<(&'static str, String)>) -> SpanGuard {
        let ord = self.next_ord.get();
        self.next_ord.set(ord + 1);
        self.obs.open_span(self.id, ord, name, attrs)
    }

    /// Ends the span now (otherwise `Drop` does).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.ended.replace(true) || self.id == 0 {
            return;
        }
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            ord: self.ord,
            name: self.name,
            attrs: std::mem::take(&mut self.attrs),
            start_ns: self.start_ns,
            duration_ns: self.obs.now_ns().saturating_sub(self.start_ns),
        };
        self.obs.push_record(record);
    }
}

/// A per-thread (well: per-owner) span buffer for hot parallel sections.
/// Recording appends to a plain `Vec` the owner holds exclusively;
/// [`LocalSpans::flush`] (also called on drop) locks the shared recorder
/// once and hands the whole batch over.
pub struct LocalSpans {
    pub(crate) obs: Observer,
    pub(crate) buf: Vec<SpanRecord>,
}

impl LocalSpans {
    /// Times `f` as a span under `parent` (a [`SpanGuard::id`]) at the
    /// explicit ordinal `ord`. The ordinal is the caller's shard index
    /// (cell index, task sequence number, …), which is what makes the
    /// merged tree independent of which worker ran the shard.
    pub fn time<R>(
        &mut self,
        parent: u64,
        ord: u64,
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
        f: impl FnOnce() -> R,
    ) -> R {
        if !self.obs.is_enabled() {
            return f();
        }
        let start_ns = self.obs.now_ns();
        let out = f();
        self.buf.push(SpanRecord {
            id: self.obs.alloc_id(),
            parent,
            ord,
            name,
            attrs,
            start_ns,
            duration_ns: self.obs.now_ns().saturating_sub(start_ns),
        });
        out
    }

    /// Like [`LocalSpans::time`], but hands `f` the id of the span being
    /// recorded so it can record *children* under it (again at explicit,
    /// caller-chosen ordinals). This is what gives a work-stealing batch
    /// a deterministic span subtree per job: the job's (parent, ord) pair
    /// comes from its submission index, never from which worker ran it or
    /// when.
    pub fn time_tree<R>(
        &mut self,
        parent: u64,
        ord: u64,
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
        f: impl FnOnce(&mut LocalSpans, u64) -> R,
    ) -> R {
        if !self.obs.is_enabled() {
            return f(self, 0);
        }
        let id = self.obs.alloc_id();
        let start_ns = self.obs.now_ns();
        let out = f(self, id);
        self.buf.push(SpanRecord {
            id,
            parent,
            ord,
            name,
            attrs,
            start_ns,
            duration_ns: self.obs.now_ns().saturating_sub(start_ns),
        });
        out
    }

    /// Merges the buffered spans into the shared recorder (one lock).
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.obs.push_records(std::mem::take(&mut self.buf));
        }
    }
}

impl Drop for LocalSpans {
    fn drop(&mut self) {
        self.flush();
    }
}
