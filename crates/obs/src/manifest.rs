//! The run manifest: one versioned JSON document per tool invocation.
//!
//! A manifest is the durable record of *what ran and where the time went*:
//! tool identity (name, version, git revision), the exact command line, an
//! echo of the effective configuration, the deterministic span tree, a
//! metrics snapshot, and a digest of the produced path set so two runs can
//! be compared for result identity without shipping the paths themselves.
//!
//! The schema is versioned through [`crate::SCHEMA_VERSION`], shared with
//! every `--format json` CLI output, and checked in CI against
//! `docs/manifest.schema.json`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;
use crate::span::SpanNode;

/// Identity of the producing tool.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ToolInfo {
    /// Tool name (`sta-repro`).
    pub name: String,
    /// Cargo package version.
    pub version: String,
    /// Git revision the binary ran from (`unknown` outside a checkout).
    pub git_rev: String,
}

/// One run's manifest document.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest schema version ([`crate::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Producing tool.
    pub tool: ToolInfo,
    /// The invocation's argument vector (excluding the binary path).
    pub command: Vec<String>,
    /// Echo of the effective configuration, key → rendered value.
    pub config: BTreeMap<String, String>,
    /// Deterministic span forest of the run.
    pub spans: Vec<SpanNode>,
    /// Metrics registry snapshot at the end of the run.
    pub metrics: MetricsSnapshot,
    /// FNV-1a digest of the produced path set (`None` for commands that
    /// emit no paths).
    pub path_digest: Option<String>,
}

impl RunManifest {
    /// Assembles a manifest from an observer's recorded state.
    pub fn new(
        command: Vec<String>,
        config: BTreeMap<String, String>,
        obs: &crate::Observer,
        path_digest: Option<String>,
    ) -> Self {
        RunManifest {
            schema_version: crate::SCHEMA_VERSION,
            tool: ToolInfo {
                name: "sta-repro".to_string(),
                version: env!("CARGO_PKG_VERSION").to_string(),
                git_rev: git_revision(),
            },
            command,
            config,
            spans: obs.span_tree(),
            metrics: obs.metrics_snapshot(),
            path_digest,
        }
    }

    /// Serializes the manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifests always serialize")
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("malformed run manifest: {e}"))
    }
}

/// Per-circuit state echoed in a [`SessionManifest`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionCircuit {
    /// Catalog name the circuit was loaded as.
    pub circuit: String,
    /// Netlist revision: 0 as loaded, +1 per applied ECO edit.
    pub revision: u64,
    /// Incremental (dirty-cone) re-analyses served for this circuit.
    pub incremental_updates: u64,
    /// Conservative full rebuilds (function-changing edits).
    pub full_rebuilds: u64,
    /// Digest of the circuit's current spliced path set, when one has
    /// been computed ([`digest_string`] over the certificate JSON).
    pub path_digest: Option<String>,
}

/// The durable record of one timing-daemon session (`serve` subcommand):
/// like [`RunManifest`] for a batch invocation, but summarizing a whole
/// request stream — request/error counts, every resident circuit with its
/// ECO revision and current path digest, and the session's metrics
/// snapshot. Emitted in `status` responses and on shutdown.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionManifest {
    /// Manifest schema version ([`crate::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Producing tool.
    pub tool: ToolInfo,
    /// Requests served (including failed ones).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Circuits resident in the session, in load order.
    pub circuits: Vec<SessionCircuit>,
    /// Metrics registry snapshot at emission time.
    pub metrics: MetricsSnapshot,
}

impl SessionManifest {
    /// Assembles a session manifest from the daemon's counters and the
    /// observer's recorded state.
    pub fn new(
        requests: u64,
        errors: u64,
        circuits: Vec<SessionCircuit>,
        obs: &crate::Observer,
    ) -> Self {
        SessionManifest {
            schema_version: crate::SCHEMA_VERSION,
            tool: ToolInfo {
                name: "sta-repro".to_string(),
                version: env!("CARGO_PKG_VERSION").to_string(),
                git_rev: git_revision(),
            },
            requests,
            errors,
            circuits,
            metrics: obs.metrics_snapshot(),
        }
    }

    /// Serializes the manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifests always serialize")
    }

    /// Parses a session manifest document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("malformed session manifest: {e}"))
    }
}

/// Best-effort git revision of the working directory (`git rev-parse
/// HEAD`); `"unknown"` when git or the repository is unavailable.
pub fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// FNV-1a 64-bit hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Renders a digest string (`fnv1a64:<16 hex digits>`) over `bytes` —
/// applied to the serialized certificate set, this is the path-set
/// identity two runs can be compared by.
pub fn digest_string(bytes: &[u8]) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = digest_string(b"paths");
        assert_eq!(a, digest_string(b"paths"));
        assert_ne!(a, digest_string(b"Paths"));
        assert!(a.starts_with("fnv1a64:"));
        assert_eq!(a.len(), "fnv1a64:".len() + 16);
    }

    #[test]
    fn session_manifest_round_trips_through_json() {
        let obs = crate::Observer::enabled();
        obs.counter("serve.requests").add(3);
        let m = SessionManifest::new(
            3,
            1,
            vec![SessionCircuit {
                circuit: "c17".to_string(),
                revision: 2,
                incremental_updates: 1,
                full_rebuilds: 1,
                path_digest: Some(digest_string(b"x")),
            }],
            &obs,
        );
        let parsed = SessionManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.circuits[0].revision, 2);
        assert_eq!(parsed.metrics.counters["serve.requests"], 3);
        assert!(SessionManifest::from_json("[]").is_err());
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let obs = crate::Observer::enabled();
        {
            let root = obs.span("analyze");
            obs.counter("enumerate.paths").add(7);
            obs.histogram("h").observe(3.0);
            drop(root);
        }
        let mut config = BTreeMap::new();
        config.insert("threads".to_string(), "4".to_string());
        let m = RunManifest::new(
            vec!["analyze".to_string(), "c17".to_string()],
            config,
            &obs,
            Some(digest_string(b"x")),
        );
        let parsed = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.schema_version, crate::SCHEMA_VERSION);
        assert_eq!(parsed.spans[0].name, "analyze");
        assert_eq!(parsed.metrics.counters["enumerate.paths"], 7);
        assert!(RunManifest::from_json("{").is_err());
    }
}
