//! The [`Observer`] handle: the single object instrumented code touches.
//!
//! An `Observer` is either *disabled* (the default — every operation is a
//! branch and the hot path stays allocation- and lock-free) or *enabled*,
//! in which case it shares one [`Recorder`] across threads via `Arc`.
//! Everything downstream — span recording, the metrics registry, the
//! progress state — hangs off the recorder.
//!
//! The hard contract of the whole layer: turning an observer on or off
//! never changes what the instrumented engines *compute*. Observers carry
//! no analysis state, every hook is read-only with respect to the search,
//! and `PartialEq` on configs that embed an observer ignores it.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use crate::progress::Progress;
use crate::span::{build_tree, LocalSpans, SpanGuard, SpanNode, SpanRecord};

pub(crate) struct Recorder {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    registry: Registry,
    progress: Mutex<Option<Arc<Progress>>>,
}

/// Cheap, cloneable observability handle. `Observer::default()` is
/// disabled; [`Observer::enabled`] creates a fresh recorder.
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<Recorder>>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Observer(enabled)"
        } else {
            "Observer(disabled)"
        })
    }
}

impl Observer {
    /// The inert observer: every hook compiles down to a `None` branch.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    /// A live observer with a fresh recorder (epoch = now).
    pub fn enabled() -> Self {
        Observer {
            inner: Some(Arc::new(Recorder {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                registry: Registry::default(),
                progress: Mutex::new(None),
            })),
        }
    }

    /// Whether this observer records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the recorder epoch (0 when disabled).
    pub(crate) fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |r| r.epoch.elapsed().as_nanos() as u64)
    }

    pub(crate) fn alloc_id(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |r| r.next_id.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn push_record(&self, record: SpanRecord) {
        if let Some(r) = &self.inner {
            r.spans.lock().expect("span buffer poisoned").push(record);
        }
    }

    pub(crate) fn push_records(&self, records: Vec<SpanRecord>) {
        if let Some(r) = &self.inner {
            r.spans
                .lock()
                .expect("span buffer poisoned")
                .extend(records);
        }
    }

    pub(crate) fn open_span(
        &self,
        parent: u64,
        ord: u64,
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
    ) -> SpanGuard {
        SpanGuard {
            obs: self.clone(),
            id: self.alloc_id(),
            parent,
            ord,
            name,
            attrs,
            start_ns: self.now_ns(),
            next_ord: Cell::new(0),
            ended: Cell::new(false),
        }
    }

    /// Opens a root span.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_with(name, Vec::new())
    }

    /// Opens a root span carrying attributes.
    pub fn span_with(&self, name: &'static str, attrs: Vec<(&'static str, String)>) -> SpanGuard {
        self.open_span(0, 0, name, attrs)
    }

    /// A private span buffer for a worker thread (see [`LocalSpans`]).
    pub fn local(&self) -> LocalSpans {
        LocalSpans {
            obs: self.clone(),
            buf: Vec::new(),
        }
    }

    /// Counter handle for `name` (registered on first use).
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|r| {
            Arc::clone(
                r.registry
                    .counters
                    .lock()
                    .expect("registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Gauge handle for `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|r| {
            Arc::clone(
                r.registry
                    .gauges
                    .lock()
                    .expect("registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Histogram handle for `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|r| {
            Arc::clone(
                r.registry
                    .histograms
                    .lock()
                    .expect("registry poisoned")
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(crate::metrics::HistInner::new())),
            )
        }))
    }

    /// Installs (or returns the existing) shared progress state. `None`
    /// when the observer is disabled.
    pub fn install_progress(&self) -> Option<Arc<Progress>> {
        let r = self.inner.as_ref()?;
        let mut slot = r.progress.lock().expect("progress poisoned");
        Some(Arc::clone(
            slot.get_or_insert_with(|| Arc::new(Progress::new())),
        ))
    }

    /// The progress state, if one was installed.
    pub fn progress(&self) -> Option<Arc<Progress>> {
        self.inner
            .as_ref()
            .and_then(|r| r.progress.lock().expect("progress poisoned").clone())
    }

    /// Reconstructs the deterministic span forest from everything recorded
    /// so far (open spans are not included — end them first).
    pub fn span_tree(&self) -> Vec<SpanNode> {
        match &self.inner {
            None => Vec::new(),
            Some(r) => build_tree(r.spans.lock().expect("span buffer poisoned").clone()),
        }
    }

    /// Snapshots the metrics registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let Some(r) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = r
            .registry
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = r
            .registry
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = r
            .registry
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Histogram(Some(Arc::clone(v))).snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        let s = obs.span("root");
        assert_eq!(s.id(), 0);
        let c = s.child("child");
        drop(c);
        drop(s);
        assert!(obs.span_tree().is_empty());
        assert_eq!(obs.metrics_snapshot(), MetricsSnapshot::default());
        assert!(obs.install_progress().is_none());
    }

    #[test]
    fn span_tree_reflects_call_structure() {
        let obs = Observer::enabled();
        {
            let root = obs.span_with("analyze", vec![("circuit", "c17".into())]);
            {
                let a = root.child("characterize");
                drop(a);
            }
            {
                let b = root.child("enumerate");
                let inner = b.child("search");
                drop(inner);
                drop(b);
            }
        }
        let tree = obs.span_tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(
            tree[0].structure(),
            "analyze(characterize,enumerate(search))"
        );
        assert_eq!(
            tree[0].attrs.get("circuit").map(String::as_str),
            Some("c17")
        );
    }

    #[test]
    fn local_buffers_merge_deterministically() {
        // Record shards in scrambled completion order: the tree must come
        // out sorted by the explicit ordinal, like the parallel path merge.
        let obs = Observer::enabled();
        let root = obs.span("characterize");
        let parent = root.id();
        let mut l1 = obs.local();
        let mut l2 = obs.local();
        l2.time(parent, 2, "cell", vec![("cell", "C".into())], || {});
        l1.time(parent, 0, "cell", vec![("cell", "A".into())], || {});
        l2.time(parent, 1, "cell", vec![("cell", "B".into())], || {});
        drop(l2);
        drop(l1);
        drop(root);
        let tree = obs.span_tree();
        let cells: Vec<&str> = tree[0]
            .children
            .iter()
            .map(|c| c.attrs.get("cell").unwrap().as_str())
            .collect();
        assert_eq!(cells, ["A", "B", "C"]);
    }

    #[test]
    fn metrics_round_trip_through_handles() {
        let obs = Observer::enabled();
        let c = obs.counter("enumerate.paths");
        c.add(3);
        obs.counter("enumerate.paths").inc(); // same underlying cell
        obs.gauge("kernel.arcs").set(42.0);
        obs.histogram("justify.decisions").observe(17.0);
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.counters["enumerate.paths"], 4);
        assert_eq!(snap.gauges["kernel.arcs"], 42.0);
        assert_eq!(snap.histograms["justify.decisions"].count, 1);
        assert_eq!(
            snap.metric_names(),
            [
                "counter:enumerate.paths",
                "gauge:kernel.arcs",
                "histogram:justify.decisions"
            ]
        );
    }
}
