//! Shared progress state and the stderr heartbeat.
//!
//! Long enumerations (c7552 full runs take minutes) are opaque without a
//! liveness signal. [`Progress`] is a handful of relaxed atomics the
//! search updates at emission points; [`Heartbeat`] is a watcher thread
//! that prints one line per interval to stderr. Neither touches the
//! search state, so enabling progress cannot change the emitted path set.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Run-progress counters shared between the search workers and the
/// heartbeat printer. All accesses are relaxed: the numbers are advisory.
pub struct Progress {
    /// Paths emitted so far.
    pub paths: AtomicU64,
    /// Search decisions taken so far (updated coarsely).
    pub decisions: AtomicU64,
    /// Depth of the most recently emitted path — how far into the circuit
    /// the search frontier currently sits.
    pub frontier_depth: AtomicU64,
    /// Current N-worst pruning bound, f64 bits (−∞ when unset).
    bound_bits: AtomicU64,
}

impl Default for Progress {
    fn default() -> Self {
        Self::new()
    }
}

impl Progress {
    /// Fresh, all-zero progress state.
    pub fn new() -> Self {
        Progress {
            paths: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
            frontier_depth: AtomicU64::new(0),
            bound_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Publishes the current pruning bound, ps.
    #[inline]
    pub fn set_bound(&self, bound: f64) {
        self.bound_bits.store(bound.to_bits(), Ordering::Relaxed);
    }

    /// The last published pruning bound (−∞ when none).
    pub fn bound(&self) -> f64 {
        f64::from_bits(self.bound_bits.load(Ordering::Relaxed))
    }

    /// One human-readable heartbeat line.
    pub fn line(&self) -> String {
        let bound = self.bound();
        format!(
            "progress: paths={} decisions={} frontier={} bound={}",
            self.paths.load(Ordering::Relaxed),
            self.decisions.load(Ordering::Relaxed),
            self.frontier_depth.load(Ordering::Relaxed),
            if bound == f64::NEG_INFINITY {
                "none".to_string()
            } else {
                format!("{bound:.1}ps")
            }
        )
    }
}

/// Background thread printing [`Progress::line`] to stderr every interval.
/// Stops (and joins) on drop. Lines only appear after the first interval,
/// so short runs stay silent.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawns the heartbeat printer.
    pub fn start(progress: Arc<Progress>, every: Duration) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // Poll the stop flag at a finer grain than the print interval
            // so drop never blocks a full interval.
            let tick = Duration::from_millis(25).min(every);
            let mut elapsed = Duration::ZERO;
            loop {
                std::thread::sleep(tick);
                if stop_flag.load(Ordering::Relaxed) {
                    return;
                }
                elapsed += tick;
                if elapsed >= every {
                    elapsed = Duration::ZERO;
                    eprintln!("{}", progress.line());
                }
            }
        });
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_line_formats() {
        let p = Progress::new();
        assert_eq!(
            p.line(),
            "progress: paths=0 decisions=0 frontier=0 bound=none"
        );
        p.paths.store(12, Ordering::Relaxed);
        p.set_bound(154.25);
        assert!(p.line().contains("paths=12"));
        assert!(p.line().contains("bound=154.2ps") || p.line().contains("bound=154.3ps"));
    }

    #[test]
    fn heartbeat_stops_promptly() {
        let p = Arc::new(Progress::new());
        let hb = Heartbeat::start(Arc::clone(&p), Duration::from_secs(3600));
        drop(hb); // must not hang for the interval
    }
}
