//! 64-lane bit-parallel three-valued simulation over a compiled
//! [`Schedule`].
//!
//! Each value slot holds **two `u64` words** `(p1, p0)`: bit `i` of `p1`
//! says lane `i`'s value *could be 1*, bit `i` of `p0` says it *could be
//! 0*. The three valid encodings per lane are `0 = (0,1)`, `1 = (1,0)` and
//! `X = (1,1)`; `(0,0)` is the empty (conflicting) value that only arises
//! when a *requirement* meet fails. Under this encoding the Kleene
//! connectives are plain word ops, applied to 64 independent lanes at
//! once:
//!
//! ```text
//! NOT:  z1 = a0            AND:  z1 = a1 & b1      OR:  z1 = a1 | b1
//!       z0 = a1                  z0 = a0 | b0           z0 = a0 & b0
//! XOR:  z1 = (a1&b0)|(a0&b1)
//!       z0 = (a1&b1)|(a0&b0)
//! ```
//!
//! These are exactly the truth tables of [`TriVal::not`], [`TriVal::and`],
//! [`TriVal::or`] and [`TriVal::xor`] lifted to the could-be-1/could-be-0
//! representation, so a lane of a [`BitSim`] run equals a scalar
//! three-valued evaluation of the same seeds — the cross-check the
//! property tests pin.
//!
//! **Requirements** turn the forward simulator into a batch consistency
//! checker: a requirement on a net is met (bitwise AND of both words) into
//! the net's value as soon as the program computes it, and the met value
//! is what propagates to the fanout. A lane whose meet empties — both
//! words zero — is *dead*: its seeds and requirements are mutually
//! inconsistent. [`BitSim::run`] returns the accumulated dead-lane mask.

use sta_netlist::NetId;

use crate::schedule::{BitOp, Schedule};
use crate::value::TriVal;

const ALL: u64 = !0u64;

/// A 64-lane three-valued evaluator for one [`Schedule`].
///
/// Reusable across runs: [`BitSim::begin`] starts a fresh batch in O(#
/// sources) by epoch-stamping requirements instead of clearing them.
#[derive(Clone, Debug)]
pub struct BitSim {
    /// Per slot: "could be 1" lane word.
    p1: Vec<u64>,
    /// Per slot: "could be 0" lane word.
    p0: Vec<u64>,
    /// Per net slot: requirement words, valid when stamped with `epoch`.
    req1: Vec<u64>,
    req0: Vec<u64>,
    req_epoch: Vec<u32>,
    epoch: u32,
}

impl BitSim {
    /// An evaluator sized for `sched`, with every lane of every source
    /// unknown.
    pub fn new(sched: &Schedule) -> BitSim {
        let slots = sched.num_slots();
        BitSim {
            p1: vec![ALL; slots],
            p0: vec![ALL; slots],
            req1: vec![ALL; sched.num_nets()],
            req0: vec![ALL; sched.num_nets()],
            req_epoch: vec![0; sched.num_nets()],
            epoch: 0,
        }
    }

    /// Starts a new batch: all sources reset to X, all requirements
    /// cleared (lazily, by epoch bump).
    pub fn begin(&mut self, sched: &Schedule) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.req_epoch.fill(0);
                1
            }
        };
        for &src in sched.sources() {
            self.p1[src.index()] = ALL;
            self.p0[src.index()] = ALL;
        }
    }

    /// Seeds every lane of a source net with the same value (X is the
    /// default, so seeding X is a no-op on a fresh batch).
    pub fn seed(&mut self, net: NetId, v: TriVal) {
        let (p1, p0) = encode(v);
        self.p1[net.index()] = p1;
        self.p0[net.index()] = p0;
    }

    /// Meets `v` into the requirement of `net` for the lanes in
    /// `lane_mask`. Requirements on source nets are applied before the
    /// program runs; requirements on driven nets are applied the moment
    /// the program computes them, and the met value propagates forward.
    pub fn require(&mut self, net: NetId, lane_mask: u64, v: TriVal) {
        let s = net.index();
        if self.req_epoch[s] != self.epoch {
            self.req_epoch[s] = self.epoch;
            self.req1[s] = ALL;
            self.req0[s] = ALL;
        }
        match v {
            TriVal::One => self.req0[s] &= !lane_mask,
            TriVal::Zero => self.req1[s] &= !lane_mask,
            TriVal::X => {}
        }
    }

    /// Runs the program and returns the dead-lane mask: the lanes of
    /// `active` whose seeds and requirements are inconsistent somewhere in
    /// the circuit. Values of dead lanes downstream of their first
    /// conflict are unspecified; live lanes carry the exact three-valued
    /// forward-simulation value (with requirements met in).
    pub fn run(&mut self, sched: &Schedule, active: u64) -> u64 {
        let mut dead = 0u64;
        // Apply requirements at the sources first: these slots have no
        // producing opcode.
        for &src in sched.sources() {
            let s = src.index();
            if self.req_epoch[s] == self.epoch {
                self.p1[s] &= self.req1[s];
                self.p0[s] &= self.req0[s];
                dead |= !(self.p1[s] | self.p0[s]);
            }
        }
        let num_nets = sched.num_nets();
        for &op in sched.ops() {
            let (mut z1, mut z0, out) = match op {
                BitOp::And { a, b, out } => {
                    let (a, b) = (a as usize, b as usize);
                    (self.p1[a] & self.p1[b], self.p0[a] | self.p0[b], out)
                }
                BitOp::Or { a, b, out } => {
                    let (a, b) = (a as usize, b as usize);
                    (self.p1[a] | self.p1[b], self.p0[a] & self.p0[b], out)
                }
                BitOp::Xor { a, b, out } => {
                    let (a, b) = (a as usize, b as usize);
                    (
                        (self.p1[a] & self.p0[b]) | (self.p0[a] & self.p1[b]),
                        (self.p1[a] & self.p1[b]) | (self.p0[a] & self.p0[b]),
                        out,
                    )
                }
                BitOp::Not { a, out } => (self.p0[a as usize], self.p1[a as usize], out),
                BitOp::Copy { a, out } => (self.p1[a as usize], self.p0[a as usize], out),
            };
            let out = out as usize;
            if out < num_nets && self.req_epoch[out] == self.epoch {
                z1 &= self.req1[out];
                z0 &= self.req0[out];
            }
            dead |= !(z1 | z0);
            self.p1[out] = z1;
            self.p0[out] = z0;
        }
        dead & active
    }

    /// The value of `net` in `lane` after [`BitSim::run`], or `None` for
    /// the empty (conflicted) value.
    pub fn get(&self, net: NetId, lane: u32) -> Option<TriVal> {
        let bit = 1u64 << lane;
        let one = self.p1[net.index()] & bit != 0;
        let zero = self.p0[net.index()] & bit != 0;
        match (one, zero) {
            (true, true) => Some(TriVal::X),
            (true, false) => Some(TriVal::One),
            (false, true) => Some(TriVal::Zero),
            (false, false) => None,
        }
    }
}

/// Broadcast word-pair encoding of a three-valued constant.
fn encode(v: TriVal) -> (u64, u64) {
    match v {
        TriVal::Zero => (0, ALL),
        TriVal::One => (ALL, 0),
        TriVal::X => (ALL, ALL),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Library;
    use sta_netlist::{GateKind, Netlist};

    /// The word-level connectives agree with the scalar `TriVal` tables on
    /// every input pair, in every lane position.
    #[test]
    fn word_ops_match_trival_tables() {
        let lib = Library::standard();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and_o = nl
            .add_gate(
                GateKind::Prim(sta_netlist::PrimOp::And),
                &[a, b],
                Some("and"),
            )
            .unwrap();
        let or_o = nl
            .add_gate(GateKind::Prim(sta_netlist::PrimOp::Or), &[a, b], Some("or"))
            .unwrap();
        let xor_o = nl
            .add_gate(
                GateKind::Prim(sta_netlist::PrimOp::Xor),
                &[a, b],
                Some("xor"),
            )
            .unwrap();
        let not_o = nl
            .add_gate(GateKind::Prim(sta_netlist::PrimOp::Not), &[a], Some("not"))
            .unwrap();
        for n in [and_o, or_o, xor_o, not_o] {
            nl.mark_output(n);
        }
        let sched = Schedule::compile(&nl, &lib);
        let mut sim = BitSim::new(&sched);
        use TriVal::*;
        let vals = [Zero, One, X];
        // One lane per (va, vb) pair, driven through requirements so each
        // lane carries its own input combination.
        sim.begin(&sched);
        for (lane, (va, vb)) in vals
            .iter()
            .flat_map(|&va| vals.iter().map(move |&vb| (va, vb)))
            .enumerate()
        {
            sim.require(a, 1 << lane, va);
            sim.require(b, 1 << lane, vb);
        }
        let dead = sim.run(&sched, (1 << 9) - 1);
        assert_eq!(dead, 0, "pure forward simulation never conflicts");
        for (lane, (va, vb)) in vals
            .iter()
            .flat_map(|&va| vals.iter().map(move |&vb| (va, vb)))
            .enumerate()
        {
            let lane = lane as u32;
            assert_eq!(sim.get(and_o, lane), Some(va.and(vb)), "{va:?} AND {vb:?}");
            assert_eq!(sim.get(or_o, lane), Some(va.or(vb)), "{va:?} OR {vb:?}");
            assert_eq!(sim.get(xor_o, lane), Some(va.xor(vb)), "{va:?} XOR {vb:?}");
            assert_eq!(sim.get(not_o, lane), Some(va.not()), "NOT {va:?}");
        }
    }

    /// A requirement that contradicts the forward value kills exactly the
    /// lanes it applies to.
    #[test]
    fn contradicted_requirement_marks_lane_dead() {
        let lib = Library::standard();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let z = nl
            .add_gate(GateKind::Cell(and2), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let sched = Schedule::compile(&nl, &lib);
        let mut sim = BitSim::new(&sched);
        sim.begin(&sched);
        sim.seed(a, TriVal::Zero);
        // Lane 0 demands z = 1 (impossible: a = 0 forces z = 0);
        // lane 1 demands z = 0 (consistent); lane 2 demands b = 1 and
        // leaves z free (consistent).
        sim.require(z, 1 << 0, TriVal::One);
        sim.require(z, 1 << 1, TriVal::Zero);
        sim.require(b, 1 << 2, TriVal::One);
        let dead = sim.run(&sched, 0b111);
        assert_eq!(dead, 0b001);
        assert_eq!(sim.get(z, 1), Some(TriVal::Zero));
        assert_eq!(sim.get(b, 2), Some(TriVal::One));
    }

    /// Requirements are epoch-scoped: a new batch forgets them.
    #[test]
    fn begin_clears_requirements_and_seeds() {
        let lib = Library::standard();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let inv = lib.cell_by_name("INV").unwrap().id();
        let z = nl.add_gate(GateKind::Cell(inv), &[a], Some("z")).unwrap();
        nl.mark_output(z);
        let sched = Schedule::compile(&nl, &lib);
        let mut sim = BitSim::new(&sched);
        sim.begin(&sched);
        sim.seed(a, TriVal::One);
        sim.require(z, ALL, TriVal::One);
        assert_eq!(sim.run(&sched, ALL), ALL, "z = NOT 1 = 0 contradicts");
        sim.begin(&sched);
        assert_eq!(sim.run(&sched, ALL), 0, "fresh batch: all X, no reqs");
        assert_eq!(sim.get(z, 17), Some(TriVal::X));
    }
}
