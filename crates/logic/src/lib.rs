//! The dual-transition multi-valued logic system and implication engine of
//! the paper's true-path algorithm (§IV.B).
//!
//! Four pieces:
//!
//! * [`value`] — a two-timeframe nine-valued algebra with the paper's
//!   *semi-undetermined* values (`X0`, `X1`, …) that flag logic
//!   incompatibilities before all implied nodes are set;
//! * [`engine`] — a circuit-wide forward-implication engine with a
//!   backtracking trail, operating on *dual* values so the rising- and
//!   falling-launch analyses of a path happen in a single traversal;
//! * [`schedule`] — a compiler that levelizes a netlist into a flat
//!   straight-line opcode program over dense net slots;
//! * [`bitsim`] — a 64-lane bit-parallel three-valued evaluator for those
//!   programs, packing 64 independent sensitization vectors into each
//!   `u64` word pair.
//!
//! # Example
//!
//! ```
//! use sta_logic::{Dual, Mask, V9};
//!
//! // The paper's example: AND(falling transition, unknown) = X0.
//! assert_eq!(V9::F.and(V9::XX), V9::X0);
//! // Dual values track both launch polarities at once.
//! let t = Dual::transition(false);
//! assert_eq!(t.r, V9::R);
//! assert_eq!(t.f, V9::F);
//! # let _ = Mask::BOTH;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitsim;
pub mod engine;
pub mod schedule;
pub mod toggle;
pub mod value;

pub use bitsim::BitSim;
pub use engine::{eval_expr_v9, eval_prim_v9, Dual, ImplicationEngine, Mask};
pub use schedule::{BitOp, Schedule};
pub use toggle::{toggle_analysis, Toggle};
pub use value::{TriVal, V9};
