//! The paper's logic system for path sensitization (§IV.B).
//!
//! Each node carries a *two-timeframe* value: its logic level before the
//! launched transition settles, and after. Either component may be unknown,
//! giving nine values. The partially-known combinations are the paper's
//! *semi-undetermined* values — e.g. a falling transition ANDed with an
//! unknown side input yields `X0` ("starts unknown, ends 0"), which lets
//! the engine flag incompatibilities before every implied node is set.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A three-valued logic level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TriVal {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    X,
}

impl TriVal {
    /// Three-valued AND.
    pub fn and(self, other: TriVal) -> TriVal {
        use TriVal::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        }
    }

    /// Three-valued OR.
    pub fn or(self, other: TriVal) -> TriVal {
        use TriVal::*;
        match (self, other) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => X,
        }
    }

    /// Three-valued NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> TriVal {
        use TriVal::*;
        match self {
            Zero => One,
            One => Zero,
            X => X,
        }
    }

    /// Three-valued XOR.
    pub fn xor(self, other: TriVal) -> TriVal {
        use TriVal::*;
        match (self, other) {
            (X, _) | (_, X) => X,
            (a, b) if a == b => Zero,
            _ => One,
        }
    }

    /// Meet: combines two (partial) observations of the same signal.
    /// `X` is the top; differing concrete values conflict.
    pub fn meet(self, other: TriVal) -> Option<TriVal> {
        use TriVal::*;
        match (self, other) {
            (X, v) | (v, X) => Some(v),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// From a concrete bit.
    pub fn from_bool(b: bool) -> TriVal {
        if b {
            TriVal::One
        } else {
            TriVal::Zero
        }
    }
}

impl fmt::Display for TriVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TriVal::Zero => "0",
            TriVal::One => "1",
            TriVal::X => "X",
        })
    }
}

/// A two-timeframe nine-valued logic value: (initial, final) levels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct V9 {
    init: TriVal,
    fin: TriVal,
}

impl V9 {
    /// Stable 0 (`00`).
    pub const S0: V9 = V9 {
        init: TriVal::Zero,
        fin: TriVal::Zero,
    };
    /// Stable 1 (`11`).
    pub const S1: V9 = V9 {
        init: TriVal::One,
        fin: TriVal::One,
    };
    /// Rising transition (`01`).
    pub const R: V9 = V9 {
        init: TriVal::Zero,
        fin: TriVal::One,
    };
    /// Falling transition (`10`).
    pub const F: V9 = V9 {
        init: TriVal::One,
        fin: TriVal::Zero,
    };
    /// Fully unknown (`XX`).
    pub const XX: V9 = V9 {
        init: TriVal::X,
        fin: TriVal::X,
    };
    /// Semi-undetermined: unknown start, settles at 0 (`X0`).
    pub const X0: V9 = V9 {
        init: TriVal::X,
        fin: TriVal::Zero,
    };
    /// Semi-undetermined: unknown start, settles at 1 (`X1`).
    pub const X1: V9 = V9 {
        init: TriVal::X,
        fin: TriVal::One,
    };
    /// Semi-undetermined: starts at 0, unknown end (`0X`).
    pub const ZX: V9 = V9 {
        init: TriVal::Zero,
        fin: TriVal::X,
    };
    /// Semi-undetermined: starts at 1, unknown end (`1X`).
    pub const OX: V9 = V9 {
        init: TriVal::One,
        fin: TriVal::X,
    };

    /// Builds a value from components.
    pub fn new(init: TriVal, fin: TriVal) -> V9 {
        V9 { init, fin }
    }

    /// A stable value from a bit.
    pub fn stable(b: bool) -> V9 {
        if b {
            V9::S1
        } else {
            V9::S0
        }
    }

    /// The initial-timeframe level.
    pub fn init(self) -> TriVal {
        self.init
    }

    /// The final-timeframe level.
    pub fn fin(self) -> TriVal {
        self.fin
    }

    /// Componentwise AND.
    pub fn and(self, o: V9) -> V9 {
        V9::new(self.init.and(o.init), self.fin.and(o.fin))
    }

    /// Componentwise OR.
    pub fn or(self, o: V9) -> V9 {
        V9::new(self.init.or(o.init), self.fin.or(o.fin))
    }

    /// Componentwise NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> V9 {
        V9::new(self.init.not(), self.fin.not())
    }

    /// Componentwise XOR.
    pub fn xor(self, o: V9) -> V9 {
        V9::new(self.init.xor(o.init), self.fin.xor(o.fin))
    }

    /// Meet of two observations; `None` on conflict.
    pub fn meet(self, o: V9) -> Option<V9> {
        Some(V9::new(self.init.meet(o.init)?, self.fin.meet(o.fin)?))
    }

    /// Whether both timeframes are concrete.
    pub fn is_fully_defined(self) -> bool {
        self.init != TriVal::X && self.fin != TriVal::X
    }

    /// Whether this value is a clean transition (R or F).
    pub fn is_transition(self) -> bool {
        self == V9::R || self == V9::F
    }
}

impl fmt::Debug for V9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.init, self.fin)
    }
}

impl fmt::Display for V9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            V9::S0 => f.write_str("0"),
            V9::S1 => f.write_str("1"),
            V9::R => f.write_str("R"),
            V9::F => f.write_str("F"),
            other => write!(f, "{}{}", other.init, other.fin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's own example: "a falling transition applied to input A of
    /// an AND2 gate with an undetermined value on B leads to a state that
    /// starts unknown but ends at logic 0 — the semi-undetermined value
    /// X0".
    #[test]
    fn paper_example_and_of_fall_and_unknown() {
        assert_eq!(V9::F.and(V9::XX), V9::X0);
    }

    #[test]
    fn transition_algebra() {
        assert_eq!(V9::R.and(V9::S1), V9::R);
        assert_eq!(V9::R.and(V9::S0), V9::S0);
        assert_eq!(V9::R.or(V9::S0), V9::R);
        assert_eq!(V9::R.or(V9::S1), V9::S1);
        assert_eq!(V9::R.not(), V9::F);
        assert_eq!(V9::F.not(), V9::R);
        assert_eq!(V9::R.xor(V9::S1), V9::F);
        assert_eq!(V9::R.xor(V9::R), V9::S0); // simultaneous equal transitions cancel
        assert_eq!(V9::R.xor(V9::F), V9::S1);
    }

    #[test]
    fn semi_undetermined_combinations() {
        assert_eq!(V9::R.and(V9::XX), V9::ZX); // starts 0, end unknown
        assert_eq!(V9::R.or(V9::XX), V9::X1); // ends 1 regardless
        assert_eq!(V9::F.or(V9::XX), V9::OX);
        assert_eq!(V9::X0.not(), V9::X1);
    }

    #[test]
    fn meet_detects_conflicts() {
        assert_eq!(V9::XX.meet(V9::R), Some(V9::R));
        assert_eq!(V9::X1.meet(V9::R), Some(V9::R));
        assert_eq!(V9::X1.meet(V9::S1), Some(V9::S1));
        assert_eq!(V9::X1.meet(V9::S0), None); // final 1 vs final 0
        assert_eq!(V9::R.meet(V9::F), None);
        assert_eq!(V9::S0.meet(V9::S0), Some(V9::S0));
    }

    #[test]
    fn trival_tables_are_standard() {
        use TriVal::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(One.xor(X), X);
        assert_eq!(One.xor(Zero), One);
    }

    #[test]
    fn display_forms() {
        assert_eq!(V9::R.to_string(), "R");
        assert_eq!(V9::X0.to_string(), "X0");
        assert_eq!(format!("{:?}", V9::F), "10");
    }
}
