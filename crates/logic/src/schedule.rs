//! Levelized straight-line evaluation programs over dense net ids.
//!
//! A [`Schedule`] compiles a combinational netlist into a flat sequence of
//! two-input logic opcodes in topological order, the classic compiled-code
//! simulation layout: no event queue, no per-gate dispatch through cell
//! expression trees — just a linear pass over an opcode array indexed by
//! *slots*. Slots `0..num_nets` are the nets themselves (`NetId::index`);
//! slots above that are scratch temporaries, reused between gates, that
//! hold intermediate values of multi-level cell expressions.
//!
//! The program is evaluator-agnostic: [`crate::bitsim::BitSim`] executes it
//! 64 lanes at a time over packed three-valued words. Opcode semantics are
//! defined to match [`crate::eval_prim_v9`] / [`crate::eval_expr_v9`]
//! exactly (same left-fold association, same `NAND`/`NOR`/`XNOR` final
//! complement), so a compiled run agrees bit-for-bit with the interpreted
//! engine on every net.

use sta_cells::func::Expr;
use sta_cells::Library;
use sta_netlist::{GateId, GateKind, NetId, Netlist, PrimOp};

/// One straight-line opcode over value slots.
///
/// `a`/`b` are read before `out` is written, so an opcode may safely write
/// over one of its own operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BitOp {
    /// `out = a AND b` (three-valued).
    And {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
        /// Destination slot.
        out: u32,
    },
    /// `out = a OR b` (three-valued).
    Or {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
        /// Destination slot.
        out: u32,
    },
    /// `out = a XOR b` (three-valued).
    Xor {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
        /// Destination slot.
        out: u32,
    },
    /// `out = NOT a` (three-valued).
    Not {
        /// Operand slot.
        a: u32,
        /// Destination slot.
        out: u32,
    },
    /// `out = a` (buffer / plain pin function).
    Copy {
        /// Operand slot.
        a: u32,
        /// Destination slot.
        out: u32,
    },
}

impl BitOp {
    /// The destination slot.
    pub fn out(self) -> u32 {
        match self {
            BitOp::And { out, .. }
            | BitOp::Or { out, .. }
            | BitOp::Xor { out, .. }
            | BitOp::Not { out, .. }
            | BitOp::Copy { out, .. } => out,
        }
    }

    /// The operand slots (the second is `None` for unary ops).
    pub fn operands(self) -> (u32, Option<u32>) {
        match self {
            BitOp::And { a, b, .. } | BitOp::Or { a, b, .. } | BitOp::Xor { a, b, .. } => {
                (a, Some(b))
            }
            BitOp::Not { a, .. } | BitOp::Copy { a, .. } => (a, None),
        }
    }
}

/// A compiled evaluation program: the gate order it was built from plus the
/// flattened opcode sequence.
#[derive(Clone, Debug)]
pub struct Schedule {
    ops: Vec<BitOp>,
    order: Vec<GateId>,
    /// Nets with no driving gate (primary inputs and genuinely undriven
    /// nets): the evaluator's seed points.
    sources: Vec<NetId>,
    num_nets: usize,
    num_slots: usize,
}

impl Schedule {
    /// Compiles `nl` using the netlist's own Kahn topological order.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle (the partial
    /// order then misses gates) or a gate with no inputs.
    pub fn compile(nl: &Netlist, lib: &Library) -> Schedule {
        Schedule::with_order(nl, lib, &nl.topo_gates())
    }

    /// Compiles `nl` with an explicit gate order. The order is **not**
    /// checked here — feed the result to [`Schedule::validate`] (that is
    /// exactly what the `SCHED001` lint rule does), or keep relying on
    /// [`Schedule::compile`].
    ///
    /// # Panics
    ///
    /// Panics if `order` does not mention every gate exactly once, or a
    /// gate has no inputs.
    pub fn with_order(nl: &Netlist, lib: &Library, order: &[GateId]) -> Schedule {
        assert_eq!(order.len(), nl.num_gates(), "order must cover every gate");
        let mut seen = vec![false; nl.num_gates()];
        for &g in order {
            assert!(!seen[g.index()], "gate listed twice in schedule order");
            seen[g.index()] = true;
        }
        let num_nets = nl.num_nets();
        let mut ops = Vec::new();
        let mut max_temp = 0usize;
        for &gid in order {
            let g = nl.gate(gid);
            assert!(g.fanin() > 0, "cannot schedule a gate with no inputs");
            let pins: Vec<u32> = g.inputs().iter().map(|n| n.index() as u32).collect();
            let out = g.output().index() as u32;
            // Temporaries restart per gate; `emit` bumps `max_temp` to the
            // high-water mark so the evaluator can size its slot array.
            let mut next_temp = num_nets as u32;
            match g.kind() {
                GateKind::Prim(op) => {
                    emit_prim(op, &pins, out, &mut ops, &mut next_temp);
                }
                GateKind::Cell(c) => {
                    emit_expr_into(lib.cell(c).expr(), &pins, out, &mut ops, &mut next_temp);
                }
            }
            max_temp = max_temp.max(next_temp as usize);
        }
        let sources = nl
            .net_ids()
            .filter(|&n| nl.net(n).driver().is_none())
            .collect();
        Schedule {
            ops,
            order: order.to_vec(),
            sources,
            num_nets,
            num_slots: max_temp.max(num_nets),
        }
    }

    /// The opcode program, in execution order.
    pub fn ops(&self) -> &[BitOp] {
        &self.ops
    }

    /// The gate order the program was compiled from.
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Nets with no driver — primary inputs plus undriven nets. These are
    /// the slots an evaluator seeds before running the program.
    pub fn sources(&self) -> &[NetId] {
        &self.sources
    }

    /// Number of net slots (slot `i` holds `NetId::from_index(i)`).
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Total slots including scratch temporaries.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Checks that the program is a valid levelization of `nl`: every
    /// operand is a source net or was written by an earlier opcode, and
    /// every driven net is written exactly once. A corrupted gate order
    /// (a gate scheduled before one of its fanins) fails here, which is
    /// what the `SCHED001` lint rule reports.
    pub fn validate(&self, nl: &Netlist) -> Result<(), String> {
        if self.num_nets != nl.num_nets() {
            return Err(format!(
                "schedule was compiled for {} nets, netlist has {}",
                self.num_nets,
                nl.num_nets()
            ));
        }
        let mut written = vec![false; self.num_slots];
        for &src in &self.sources {
            written[src.index()] = true;
        }
        let mut net_writes = vec![0usize; self.num_nets];
        for (i, op) in self.ops.iter().enumerate() {
            let (a, b) = op.operands();
            for operand in [Some(a), b].into_iter().flatten() {
                if !written[operand as usize] {
                    return Err(format!(
                        "op {i} reads slot {operand} ({}) before it is written \
                         — schedule is not a topological order",
                        slot_label(nl, operand, self.num_nets)
                    ));
                }
            }
            let out = op.out() as usize;
            written[out] = true;
            if out < self.num_nets {
                net_writes[out] += 1;
            }
        }
        for n in nl.net_ids() {
            let want = usize::from(nl.net(n).driver().is_some());
            if net_writes[n.index()] != want {
                return Err(format!(
                    "net {} is written {} time(s), expected {want}",
                    nl.net_label(n),
                    net_writes[n.index()]
                ));
            }
        }
        Ok(())
    }
}

fn slot_label(nl: &Netlist, slot: u32, num_nets: usize) -> String {
    if (slot as usize) < num_nets {
        format!("net {}", nl.net_label(NetId::from_index(slot as usize)))
    } else {
        format!("temp {}", slot as usize - num_nets)
    }
}

/// Emits a left fold of `terms` under `op2`, writing the final result to
/// `out`. Matches the `fold` in [`crate::eval_prim_v9`]: the identity
/// element is absorbed because `1 AND x = x`, `0 OR x = x`, `0 XOR x = x`
/// in three-valued logic, so folding from the first term is equivalent.
fn emit_fold(
    op2: fn(u32, u32, u32) -> BitOp,
    terms: &[u32],
    out: u32,
    ops: &mut Vec<BitOp>,
    next_temp: &mut u32,
) {
    match terms {
        [] => unreachable!("fold over no terms"),
        [single] => ops.push(BitOp::Copy { a: *single, out }),
        [first, rest @ ..] => {
            let mut acc = *first;
            for (k, &t) in rest.iter().enumerate() {
                let dst = if k + 1 == rest.len() {
                    out
                } else {
                    let d = *next_temp;
                    *next_temp += 1;
                    d
                };
                ops.push(op2(acc, t, dst));
                acc = dst;
            }
        }
    }
}

fn emit_prim(op: PrimOp, pins: &[u32], out: u32, ops: &mut Vec<BitOp>, next_temp: &mut u32) {
    let and2 = |a, b, out| BitOp::And { a, b, out };
    let or2 = |a, b, out| BitOp::Or { a, b, out };
    let xor2 = |a, b, out| BitOp::Xor { a, b, out };
    match op {
        PrimOp::And => emit_fold(and2, pins, out, ops, next_temp),
        PrimOp::Or => emit_fold(or2, pins, out, ops, next_temp),
        PrimOp::Xor => emit_fold(xor2, pins, out, ops, next_temp),
        PrimOp::Nand | PrimOp::Nor | PrimOp::Xnor => {
            let inner = *next_temp;
            *next_temp += 1;
            let op2 = match op {
                PrimOp::Nand => and2,
                PrimOp::Nor => or2,
                _ => xor2,
            };
            emit_fold(op2, pins, inner, ops, next_temp);
            ops.push(BitOp::Not { a: inner, out });
        }
        PrimOp::Not => ops.push(BitOp::Not { a: pins[0], out }),
        PrimOp::Buf => ops.push(BitOp::Copy { a: pins[0], out }),
    }
}

/// Emits `expr` over the gate's pin slots, writing the result to `out`.
/// Association matches [`crate::eval_expr_v9`]'s left folds.
fn emit_expr_into(expr: &Expr, pins: &[u32], out: u32, ops: &mut Vec<BitOp>, next_temp: &mut u32) {
    match expr {
        Expr::Pin(p) => ops.push(BitOp::Copy {
            a: pins[*p as usize],
            out,
        }),
        Expr::Not(e) => {
            let a = emit_expr_val(e, pins, ops, next_temp);
            ops.push(BitOp::Not { a, out });
        }
        Expr::And(es) | Expr::Or(es) | Expr::Xor(es) => {
            let terms: Vec<u32> = es
                .iter()
                .map(|e| emit_expr_val(e, pins, ops, next_temp))
                .collect();
            let op2 = match expr {
                Expr::And(_) => |a, b, out| BitOp::And { a, b, out },
                Expr::Or(_) => |a, b, out| BitOp::Or { a, b, out },
                _ => |a, b, out| BitOp::Xor { a, b, out },
            };
            emit_fold(op2, &terms, out, ops, next_temp);
        }
    }
}

/// Emits `expr` to a slot of the compiler's choosing (a pin slot for plain
/// pins, a fresh temp otherwise) and returns that slot.
fn emit_expr_val(expr: &Expr, pins: &[u32], ops: &mut Vec<BitOp>, next_temp: &mut u32) -> u32 {
    if let Expr::Pin(p) = expr {
        return pins[*p as usize];
    }
    let dst = *next_temp;
    *next_temp += 1;
    emit_expr_into(expr, pins, dst, ops, next_temp);
    dst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand_chain() -> (Library, Netlist) {
        let lib = Library::standard();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let x = nl
            .add_gate(GateKind::Cell(nand2), &[a, b], Some("x"))
            .unwrap();
        let y = nl
            .add_gate(GateKind::Cell(nand2), &[x, c], Some("y"))
            .unwrap();
        nl.mark_output(y);
        (lib, nl)
    }

    #[test]
    fn compile_validates_and_covers_every_net() {
        let (lib, nl) = nand_chain();
        let sched = Schedule::compile(&nl, &lib);
        sched.validate(&nl).expect("compiled schedule is valid");
        assert_eq!(sched.num_nets(), nl.num_nets());
        assert!(sched.num_slots() >= sched.num_nets());
        // Every driven net is the destination of exactly one op.
        let driven: Vec<u32> = nl
            .net_ids()
            .filter(|&n| nl.net(n).driver().is_some())
            .map(|n| n.index() as u32)
            .collect();
        for n in driven {
            assert_eq!(sched.ops().iter().filter(|op| op.out() == n).count(), 1);
        }
    }

    #[test]
    fn reversed_order_fails_validation() {
        let (lib, nl) = nand_chain();
        let mut order = nl.topo_gates();
        order.reverse();
        let sched = Schedule::with_order(&nl, &lib, &order);
        let err = sched.validate(&nl).expect_err("reversed order is invalid");
        assert!(err.contains("before it is written"), "{err}");
    }

    #[test]
    fn primitive_gates_compile() {
        let lib = Library::standard();
        let mut nl = Netlist::new("p");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[a, b], Some("n"))
            .unwrap();
        let x = nl
            .add_gate(GateKind::Prim(PrimOp::Xnor), &[n, a], Some("x"))
            .unwrap();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Buf), &[x], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let sched = Schedule::compile(&nl, &lib);
        sched.validate(&nl).expect("valid");
        // NAND and XNOR each need an inner temp.
        assert!(sched.num_slots() > sched.num_nets());
    }
}
