//! Circuit-wide implication engine with trail-based backtracking.
//!
//! This is the machinery behind the paper's single-pass algorithm:
//! "each time a logic value is assigned to a node, such value is propagated
//! through all the gates having such node as an input — this helps in early
//! detection of logic inconsistencies" (§IV.B). Values are the
//! *dual-transition* pairs of [`Dual`]: the rising-launch and
//! falling-launch analyses run simultaneously over one stored value per
//! node, so a path is traversed once for both transition polarities.

use std::collections::VecDeque;

use sta_cells::func::Expr;
use sta_cells::Library;
use sta_netlist::{GateId, GateKind, NetId, Netlist, PrimOp};

use crate::toggle::Toggle;
use crate::value::V9;

/// A dual-transition value: the node's [`V9`] under a rising launch and
/// under a falling launch of the path input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dual {
    /// Value if the launched transition is rising.
    pub r: V9,
    /// Value if the launched transition is falling.
    pub f: V9,
}

impl Dual {
    /// Fully unknown in both analyses.
    pub const XX: Dual = Dual {
        r: V9::XX,
        f: V9::XX,
    };

    /// A stable logic constant (identical in both analyses).
    pub fn stable(b: bool) -> Dual {
        Dual {
            r: V9::stable(b),
            f: V9::stable(b),
        }
    }

    /// The launched transition itself: R in the rising analysis, F in the
    /// falling one. `inverted` flips both (a path with odd inversion
    /// parity).
    pub fn transition(inverted: bool) -> Dual {
        if inverted {
            Dual { r: V9::F, f: V9::R }
        } else {
            Dual { r: V9::R, f: V9::F }
        }
    }
}

/// Which launch polarities are still alive in the current search branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mask {
    /// Rising-launch analysis alive.
    pub r: bool,
    /// Falling-launch analysis alive.
    pub f: bool,
}

impl Mask {
    /// Both polarities alive.
    pub const BOTH: Mask = Mask { r: true, f: true };
    /// Neither polarity alive.
    pub const NONE: Mask = Mask { r: false, f: false };

    /// Whether any polarity is alive.
    pub fn any(self) -> bool {
        self.r || self.f
    }

    /// Intersection.
    pub fn and(self, o: Mask) -> Mask {
        Mask {
            r: self.r && o.r,
            f: self.f && o.f,
        }
    }

    /// Removes the polarities in `conflicts`.
    pub fn minus(self, conflicts: Mask) -> Mask {
        Mask {
            r: self.r && !conflicts.r,
            f: self.f && !conflicts.f,
        }
    }
}

/// Implication engine over a mapped (or primitive) netlist.
///
/// Assignments are merged per polarity; every change is recorded on a trail
/// so the search can roll back to any [`ImplicationEngine::mark`].
#[derive(Debug)]
pub struct ImplicationEngine<'a> {
    nl: &'a Netlist,
    lib: &'a Library,
    values: Vec<Dual>,
    trail: Vec<(NetId, Dual)>,
    queue: VecDeque<GateId>,
    /// Optional per-net toggle deltas (see [`crate::toggle`]); when set,
    /// merges that contradict the delta are conflicts.
    toggles: Option<Vec<Toggle>>,
}

impl<'a> ImplicationEngine<'a> {
    /// Creates an engine with every net fully unknown.
    pub fn new(nl: &'a Netlist, lib: &'a Library) -> Self {
        ImplicationEngine {
            nl,
            lib,
            values: vec![Dual::XX; nl.num_nets()],
            trail: Vec::new(),
            queue: VecDeque::new(),
            toggles: None,
        }
    }

    /// Installs (or clears) the static toggle analysis of the current
    /// launch source. With deltas installed, any merge that would give a
    /// net a value incompatible with its delta — a stable value on a net
    /// that provably toggles, or a transition on a net that provably
    /// cannot — is reported as a conflict immediately. This is the O(1)
    /// refutation that keeps reconvergent XOR logic (c499-style) from
    /// exploding the justification search.
    ///
    /// # Panics
    ///
    /// Panics if a vector is supplied whose length differs from the net
    /// count, or if the trail is not empty (deltas are per-launch-source
    /// and must be installed before any assignment).
    pub fn set_toggles(&mut self, toggles: Option<Vec<Toggle>>) {
        if let Some(t) = &toggles {
            assert_eq!(t.len(), self.nl.num_nets(), "one delta per net");
        }
        assert!(
            self.trail.is_empty(),
            "install toggle deltas before assigning"
        );
        self.toggles = toggles;
    }

    /// The toggle deltas currently installed, if any. Lets callers clone
    /// the launch-source analysis into a second engine (e.g. the nogood
    /// verification replay in `sta-core`) without re-running it.
    pub fn toggles(&self) -> Option<&[Toggle]> {
        self.toggles.as_deref()
    }

    /// A fresh engine over the same netlist and library, with every net
    /// fully unknown. Cheaper to reason about than `Clone` (no trail or
    /// queue state is carried over) and the building block for per-worker
    /// engines in parallel enumeration.
    pub fn fork(&self) -> ImplicationEngine<'a> {
        ImplicationEngine::new(self.nl, self.lib)
    }

    /// Returns the engine to its post-construction state: every net
    /// unknown, trail and propagation queue empty, toggle deltas cleared.
    /// Equivalent to (but cheaper than) building a new engine when the
    /// allocation is to be reused across launch sources.
    pub fn reset(&mut self) {
        self.values.fill(Dual::XX);
        self.trail.clear();
        self.queue.clear();
        self.toggles = None;
    }

    /// The current value of a net.
    #[inline]
    pub fn value(&self, net: NetId) -> Dual {
        self.values[net.index()]
    }

    /// The cell library this engine resolves gate functions with.
    #[inline]
    pub fn library(&self) -> &'a Library {
        self.lib
    }

    /// The netlist this engine operates on.
    #[inline]
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// A trail mark for later [`ImplicationEngine::rollback`].
    #[inline]
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// The nets assigned or implied since construction (the trail), in
    /// assignment order. A net changed more than once appears more than
    /// once; read its current value with [`ImplicationEngine::value`].
    /// Every net whose value is not fully unknown is on the trail, which
    /// is what lets the bit-parallel filter re-impose the engine's known
    /// values as batch requirements.
    pub fn assigned_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.trail.iter().map(|&(n, _)| n)
    }

    /// Restores every net changed since `mark` (in reverse order).
    pub fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (net, old) = self.trail.pop().expect("trail length checked");
            self.values[net.index()] = old;
        }
    }

    /// Assigns `want` to `net` (merging with the current value) and
    /// propagates implications forward through the fanout cone.
    ///
    /// Only the polarities in `mask` participate; dead polarities keep
    /// their old component untouched. Returns the set of polarities that
    /// ran into a conflict anywhere in the cone — the caller removes them
    /// from its alive mask (and typically backtracks when none are left).
    pub fn assign(&mut self, net: NetId, want: Dual, mask: Mask) -> Mask {
        let mut conflicts = Mask::NONE;
        self.merge(net, want, mask, &mut conflicts);
        self.propagate(mask.minus(conflicts), &mut conflicts);
        conflicts
    }

    /// Re-evaluates the fanout cones of the given nets without assigning
    /// anything new (useful after a rollback that changed the frontier).
    pub fn reevaluate(&mut self, nets: &[NetId], mask: Mask) -> Mask {
        let mut conflicts = Mask::NONE;
        for &n in nets {
            for pr in self.nl.net(n).fanout() {
                self.queue.push_back(pr.gate);
            }
        }
        self.propagate(mask, &mut conflicts);
        conflicts
    }

    /// The value a gate's output takes given the current input values.
    pub fn computed_output(&self, gate: GateId, mask: Mask) -> Dual {
        let g = self.nl.gate(gate);
        let current = self.values[g.output().index()];
        let mut out = Dual::XX;
        // Hot path of forward propagation: avoid heap allocation for the
        // small pin counts of mapped netlists; fall back to a Vec for
        // wide primitives.
        let mut small = [V9::XX; 8];
        let mut big: Vec<V9>;
        for pol in [Polarity::R, Polarity::F] {
            if !pol.alive(mask) {
                *pol.get_mut(&mut out) = pol.get(current);
                continue;
            }
            let ins: &[V9] = if g.fanin() <= small.len() {
                for (slot, n) in small.iter_mut().zip(g.inputs()) {
                    *slot = pol.get(self.values[n.index()]);
                }
                &small[..g.fanin()]
            } else {
                big = g
                    .inputs()
                    .iter()
                    .map(|n| pol.get(self.values[n.index()]))
                    .collect();
                &big
            };
            *pol.get_mut(&mut out) = match g.kind() {
                GateKind::Prim(op) => eval_prim_v9(op, ins),
                GateKind::Cell(c) => eval_expr_v9(self.lib.cell(c).expr(), ins),
            };
        }
        out
    }

    fn merge(&mut self, net: NetId, want: Dual, mask: Mask, conflicts: &mut Mask) {
        let old = self.values[net.index()];
        let delta = self
            .toggles
            .as_ref()
            .map_or(Toggle::Unknown, |t| t[net.index()]);
        let mut new = old;
        let mut changed = false;
        for pol in [Polarity::R, Polarity::F] {
            if !pol.alive(mask) || pol.alive(*conflicts) {
                continue;
            }
            match pol.get(old).meet(pol.get(want)) {
                Some(v) => {
                    if !delta.compatible(v) {
                        *pol.flag_mut(conflicts) = true;
                    } else if v != pol.get(old) {
                        *pol.get_mut(&mut new) = v;
                        changed = true;
                    }
                }
                None => *pol.flag_mut(conflicts) = true,
            }
        }
        if changed {
            self.trail.push((net, old));
            self.values[net.index()] = new;
            for pr in self.nl.net(net).fanout() {
                self.queue.push_back(pr.gate);
            }
        }
    }

    fn propagate(&mut self, mut mask: Mask, conflicts: &mut Mask) {
        while let Some(gate) = self.queue.pop_front() {
            if !mask.any() {
                self.queue.clear();
                break;
            }
            let out_net = self.nl.gate(gate).output();
            let computed = self.computed_output(gate, mask);
            self.merge(out_net, computed, mask, conflicts);
            mask = mask.minus(*conflicts);
        }
    }
}

/// Helper to address one polarity of a [`Dual`] / [`Mask`].
#[derive(Clone, Copy)]
enum Polarity {
    R,
    F,
}

impl Polarity {
    fn alive(self, m: Mask) -> bool {
        match self {
            Polarity::R => m.r,
            Polarity::F => m.f,
        }
    }

    fn get(self, d: Dual) -> V9 {
        match self {
            Polarity::R => d.r,
            Polarity::F => d.f,
        }
    }

    fn get_mut(self, d: &mut Dual) -> &mut V9 {
        match self {
            Polarity::R => &mut d.r,
            Polarity::F => &mut d.f,
        }
    }

    fn flag_mut(self, m: &mut Mask) -> &mut bool {
        match self {
            Polarity::R => &mut m.r,
            Polarity::F => &mut m.f,
        }
    }
}

/// Evaluates a primitive operator over nine-valued inputs.
pub fn eval_prim_v9(op: PrimOp, ins: &[V9]) -> V9 {
    match op {
        PrimOp::And => ins.iter().copied().fold(V9::S1, V9::and),
        PrimOp::Or => ins.iter().copied().fold(V9::S0, V9::or),
        PrimOp::Nand => ins.iter().copied().fold(V9::S1, V9::and).not(),
        PrimOp::Nor => ins.iter().copied().fold(V9::S0, V9::or).not(),
        PrimOp::Not => ins[0].not(),
        PrimOp::Buf => ins[0],
        PrimOp::Xor => ins.iter().copied().fold(V9::S0, V9::xor),
        PrimOp::Xnor => ins.iter().copied().fold(V9::S0, V9::xor).not(),
    }
}

/// Evaluates a cell expression over nine-valued pin values.
pub fn eval_expr_v9(expr: &Expr, pins: &[V9]) -> V9 {
    match expr {
        Expr::Pin(p) => pins[*p as usize],
        Expr::Not(e) => eval_expr_v9(e, pins).not(),
        Expr::And(es) => es
            .iter()
            .map(|e| eval_expr_v9(e, pins))
            .fold(V9::S1, V9::and),
        Expr::Or(es) => es
            .iter()
            .map(|e| eval_expr_v9(e, pins))
            .fold(V9::S0, V9::or),
        Expr::Xor(es) => es
            .iter()
            .map(|e| eval_expr_v9(e, pins))
            .fold(V9::S0, V9::xor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::{GateKind, Netlist};

    fn lib() -> Library {
        Library::standard()
    }

    /// AND2 chain: transition with an unknown side input becomes
    /// semi-undetermined at the output, and a later 0 on the side input
    /// kills the transition.
    #[test]
    fn forward_propagation_produces_semi_undetermined() {
        let l = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and2 = l.cell_by_name("AND2").unwrap().id();
        let z = nl
            .add_gate(GateKind::Cell(and2), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let mut eng = ImplicationEngine::new(&nl, &l);
        let c = eng.assign(a, Dual::transition(false), Mask::BOTH);
        assert_eq!(c, Mask::NONE);
        // Falling launch through AND with unknown side: X0 (paper example).
        assert_eq!(eng.value(z).f, V9::X0);
        assert_eq!(eng.value(z).r, V9::ZX);
        // Now set B=1: the transition passes in both analyses.
        let c = eng.assign(b, Dual::stable(true), Mask::BOTH);
        assert_eq!(c, Mask::NONE);
        assert_eq!(eng.value(z).r, V9::R);
        assert_eq!(eng.value(z).f, V9::F);
    }

    /// Requiring the output of a blocked gate to transition conflicts as
    /// soon as the blocking side value is propagated.
    #[test]
    fn early_conflict_detection() {
        let l = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and2 = l.cell_by_name("AND2").unwrap().id();
        let z = nl
            .add_gate(GateKind::Cell(and2), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let mut eng = ImplicationEngine::new(&nl, &l);
        // Demand a transition at z (both analyses).
        assert_eq!(
            eng.assign(z, Dual::transition(false), Mask::BOTH),
            Mask::NONE
        );
        assert_eq!(
            eng.assign(a, Dual::transition(false), Mask::BOTH),
            Mask::NONE
        );
        // B = 0 forces z to stable 0 — conflicting with the required
        // transition in both analyses.
        let conflicts = eng.assign(b, Dual::stable(false), Mask::BOTH);
        assert_eq!(conflicts, Mask::BOTH);
    }

    /// A conflict in only one polarity leaves the other analysis usable.
    #[test]
    fn single_polarity_conflict() {
        let l = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let inv = l.cell_by_name("INV").unwrap().id();
        let z = nl.add_gate(GateKind::Cell(inv), &[a], Some("z")).unwrap();
        nl.mark_output(z);
        let mut eng = ImplicationEngine::new(&nl, &l);
        assert_eq!(
            eng.assign(a, Dual::transition(false), Mask::BOTH),
            Mask::NONE
        );
        // Demand z = R in both analyses. Rising launch gives z = F →
        // conflict in r only; falling launch gives z = R → fine.
        let conflicts = eng.assign(z, Dual { r: V9::R, f: V9::R }, Mask::BOTH);
        assert_eq!(conflicts, Mask { r: true, f: false });
    }

    #[test]
    fn rollback_restores_everything() {
        let l = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let nand2 = l.cell_by_name("NAND2").unwrap().id();
        let z = nl
            .add_gate(GateKind::Cell(nand2), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let mut eng = ImplicationEngine::new(&nl, &l);
        let m0 = eng.mark();
        eng.assign(a, Dual::stable(true), Mask::BOTH);
        eng.assign(b, Dual::stable(true), Mask::BOTH);
        assert_eq!(eng.value(z).r, V9::S0);
        eng.rollback(m0);
        for n in [a, b, z] {
            assert_eq!(eng.value(n), Dual::XX, "{n:?}");
        }
    }

    /// `fork` yields an independent engine; `reset` restores the
    /// post-construction state including toggle deltas.
    #[test]
    fn fork_and_reset_give_fresh_engines() {
        let l = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let inv = l.cell_by_name("INV").unwrap().id();
        let z = nl.add_gate(GateKind::Cell(inv), &[a], Some("z")).unwrap();
        nl.mark_output(z);
        let mut eng = ImplicationEngine::new(&nl, &l);
        eng.assign(a, Dual::stable(true), Mask::BOTH);
        assert_ne!(eng.value(z), Dual::XX);
        // A fork sees none of the parent's assignments.
        let forked = eng.fork();
        assert_eq!(forked.value(a), Dual::XX);
        assert_eq!(forked.value(z), Dual::XX);
        // Reset clears values, trail, and toggles.
        eng.reset();
        assert_eq!(eng.value(a), Dual::XX);
        assert_eq!(eng.mark(), 0);
        // The trail is empty again, so toggles can be (re)installed.
        eng.set_toggles(Some(vec![Toggle::Unknown; nl.num_nets()]));
        eng.reset();
        eng.set_toggles(None);
    }

    /// Propagation runs transitively through a cone (c17-like).
    #[test]
    fn transitive_propagation() {
        let l = lib();
        let mut nl = Netlist::new("t");
        let nand2 = l.cell_by_name("NAND2").unwrap().id();
        let i1 = nl.add_input("i1");
        let i2 = nl.add_input("i2");
        let i3 = nl.add_input("i3");
        let x = nl.add_gate(GateKind::Cell(nand2), &[i1, i2], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(nand2), &[x, i3], None).unwrap();
        nl.mark_output(y);
        let mut eng = ImplicationEngine::new(&nl, &l);
        eng.assign(i1, Dual::transition(false), Mask::BOTH);
        eng.assign(i2, Dual::stable(true), Mask::BOTH);
        eng.assign(i3, Dual::stable(true), Mask::BOTH);
        // y = NAND(NAND(T,1),1): double inversion restores the launch.
        assert_eq!(eng.value(y).r, V9::R);
        assert_eq!(eng.value(y).f, V9::F);
    }

    /// XOR propagates transitions with data-dependent polarity.
    #[test]
    fn xor_polarity_depends_on_side() {
        let l = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let xor2 = l.cell_by_name("XOR2").unwrap().id();
        let z = nl
            .add_gate(GateKind::Cell(xor2), &[a, b], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let mut eng = ImplicationEngine::new(&nl, &l);
        eng.assign(a, Dual::transition(false), Mask::BOTH);
        let m = eng.mark();
        eng.assign(b, Dual::stable(false), Mask::BOTH);
        assert_eq!(eng.value(z).r, V9::R);
        eng.rollback(m);
        eng.reevaluate(&[b], Mask::BOTH);
        eng.assign(b, Dual::stable(true), Mask::BOTH);
        assert_eq!(eng.value(z).r, V9::F);
    }
}
