//! Static toggle (parity-delta) analysis.
//!
//! During path enumeration exactly one primary input carries a transition;
//! every other PI is stable. Under that premise each net has a *delta* —
//! whether its final value differs from its initial value:
//!
//! * `Zero` — the net provably keeps its value for **every** stable
//!   assignment of the non-source PIs;
//! * `One` — the net provably toggles for every such assignment;
//! * `Unknown` — value-dependent.
//!
//! Deltas propagate exactly through XOR/XNOR/NOT/BUF (`delta_out = ⊕
//! delta_in`), and conservatively through AND/OR-style logic (all-zero ⇒
//! zero, otherwise unknown). The payoff is on reconvergent XOR logic
//! (the c499/c1355 family): a side-input requirement of a *stable* value
//! on a `One` net is unsatisfiable, and proving that by chronological
//! backtracking over the XOR trees is exponential — the delta check
//! refutes it in O(1).

use sta_cells::func::Expr;
use sta_cells::Library;
use sta_netlist::{GateKind, NetId, Netlist, PrimOp};

use crate::value::V9;

/// The parity delta of a net between the two timeframes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Toggle {
    /// Final value provably equals the initial value.
    Zero,
    /// Final value provably differs from the initial value.
    One,
    /// Value-dependent.
    Unknown,
}

impl Toggle {
    /// Exact XOR of two deltas (`Unknown` absorbs).
    pub fn xor(self, o: Toggle) -> Toggle {
        match (self, o) {
            (Toggle::Unknown, _) | (_, Toggle::Unknown) => Toggle::Unknown,
            (a, b) if a == b => Toggle::Zero,
            _ => Toggle::One,
        }
    }

    /// Whether a nine-valued requirement is compatible with this delta:
    /// a `One` net can never hold a value with equal concrete frames, and
    /// a `Zero` net can never hold a transition.
    pub fn compatible(self, v: V9) -> bool {
        use crate::value::TriVal;
        let (i, f) = (v.init(), v.fin());
        match self {
            Toggle::Unknown => true,
            Toggle::One => !(i != TriVal::X && i == f),
            Toggle::Zero => !(i != TriVal::X && f != TriVal::X && i != f),
        }
    }
}

/// Computes the per-net delta for a transition launched at `source`, with
/// every other primary input held stable.
///
/// # Panics
///
/// Panics if the netlist has a cycle.
pub fn toggle_analysis(nl: &Netlist, lib: &Library, source: NetId) -> Vec<Toggle> {
    let mut delta = vec![Toggle::Zero; nl.num_nets()];
    delta[source.index()] = Toggle::One;
    let order = nl.topo_gates();
    assert_eq!(order.len(), nl.num_gates(), "netlist has a cycle");
    for g in order {
        let gate = nl.gate(g);
        let out_net = gate.output();
        // Structural XOR recognition: the classic four-NAND XOR
        // (z = NAND(NAND(a, m), NAND(b, m)) with m = NAND(a, b)) computes
        // a ⊕ b, so its delta is exactly delta(a) ⊕ delta(b). Without this
        // peephole the NAND-expanded parity circuits (c1355) lose every
        // exact delta and with it all static pruning.
        if let Some((a, b)) = match_nand_xor(nl, lib, g) {
            delta[out_net.index()] = delta[a.index()].xor(delta[b.index()]);
            continue;
        }
        let ins: Vec<Toggle> = gate.inputs().iter().map(|n| delta[n.index()]).collect();
        let out = match gate.kind() {
            GateKind::Prim(op) => prim_delta(op, &ins),
            GateKind::Cell(c) => expr_delta(lib.cell(c).expr(), &ins),
        };
        delta[out_net.index()] = out;
    }
    delta
}

/// Whether `gate` computes `NAND(x, y)` of exactly two inputs.
fn nand2_inputs(nl: &Netlist, lib: &Library, g: sta_netlist::GateId) -> Option<(NetId, NetId)> {
    let gate = nl.gate(g);
    if gate.fanin() != 2 {
        return None;
    }
    let is_nand = match gate.kind() {
        GateKind::Prim(PrimOp::Nand) => true,
        GateKind::Prim(_) => false,
        GateKind::Cell(c) => {
            use sta_cells::func::Expr;
            matches!(
                lib.cell(c).expr(),
                Expr::Not(inner) if matches!(
                    &**inner,
                    Expr::And(kids) if kids.len() == 2
                        && matches!(kids[0], Expr::Pin(_))
                        && matches!(kids[1], Expr::Pin(_))
                )
            )
        }
    };
    is_nand.then(|| (gate.inputs()[0], gate.inputs()[1]))
}

/// Matches the four-NAND XOR block rooted at `g`, returning its logical
/// leaf inputs `(a, b)`.
fn match_nand_xor(nl: &Netlist, lib: &Library, g: sta_netlist::GateId) -> Option<(NetId, NetId)> {
    let (x, y) = nand2_inputs(nl, lib, g)?;
    let gx = nl.net(x).driver()?;
    let gy = nl.net(y).driver()?;
    let (xa, xb) = nand2_inputs(nl, lib, gx)?;
    let (ya, yb) = nand2_inputs(nl, lib, gy)?;
    // Find the shared middle net m and the distinct leaves.
    let (m, a, b) = if xa == ya {
        (xa, xb, yb)
    } else if xa == yb {
        (xa, xb, ya)
    } else if xb == ya {
        (xb, xa, yb)
    } else if xb == yb {
        (xb, xa, ya)
    } else {
        return None;
    };
    let gm = nl.net(m).driver()?;
    let (ma, mb) = nand2_inputs(nl, lib, gm)?;
    ((ma == a && mb == b) || (ma == b && mb == a)).then_some((a, b))
}

fn prim_delta(op: PrimOp, ins: &[Toggle]) -> Toggle {
    match op {
        PrimOp::Not | PrimOp::Buf => ins[0],
        PrimOp::Xor | PrimOp::Xnor => ins.iter().copied().fold(Toggle::Zero, Toggle::xor),
        PrimOp::And | PrimOp::Or | PrimOp::Nand | PrimOp::Nor => {
            if ins.iter().all(|&t| t == Toggle::Zero) {
                Toggle::Zero
            } else {
                Toggle::Unknown
            }
        }
    }
}

fn expr_delta(expr: &Expr, pins: &[Toggle]) -> Toggle {
    match expr {
        Expr::Pin(p) => pins[*p as usize],
        Expr::Not(e) => expr_delta(e, pins),
        Expr::Xor(es) => es
            .iter()
            .map(|e| expr_delta(e, pins))
            .fold(Toggle::Zero, Toggle::xor),
        Expr::And(es) | Expr::Or(es) => {
            if es.iter().all(|e| expr_delta(e, pins) == Toggle::Zero) {
                Toggle::Zero
            } else {
                Toggle::Unknown
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::{GateKind, Netlist};

    #[test]
    fn xor_chains_are_exact() {
        let lib = Library::standard();
        let xor2 = lib.cell_by_name("XOR2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.add_gate(GateKind::Cell(xor2), &[a, b], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(xor2), &[x, c], None).unwrap();
        // Reconvergence: z = y ⊕ a — the source's parity cancels.
        let z = nl.add_gate(GateKind::Cell(xor2), &[y, a], None).unwrap();
        nl.mark_output(z);
        let d = toggle_analysis(&nl, &lib, a);
        assert_eq!(d[x.index()], Toggle::One, "x toggles with a");
        assert_eq!(d[y.index()], Toggle::One);
        assert_eq!(d[z.index()], Toggle::Zero, "parity of a cancels in z");
    }

    #[test]
    fn and_logic_is_conservative() {
        let lib = Library::standard();
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.add_gate(GateKind::Cell(and2), &[a, b], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(and2), &[b, c], None).unwrap();
        nl.mark_output(x);
        nl.mark_output(y);
        let d = toggle_analysis(&nl, &lib, a);
        assert_eq!(d[x.index()], Toggle::Unknown, "may or may not pass");
        assert_eq!(d[y.index()], Toggle::Zero, "cone without the source");
    }

    /// The four-NAND XOR block is recognized and gets the exact parity
    /// delta, both mapped (NAND2 cells) and primitive.
    #[test]
    fn nand_xor_block_is_exact() {
        let lib = Library::standard();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let m = nl.add_gate(GateKind::Cell(nand2), &[a, b], None).unwrap();
        let x = nl.add_gate(GateKind::Cell(nand2), &[a, m], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(nand2), &[m, b], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(nand2), &[x, y], None).unwrap();
        nl.mark_output(z);
        let d = toggle_analysis(&nl, &lib, a);
        assert_eq!(d[z.index()], Toggle::One, "z = a XOR b toggles with a");
        // A plain NAND pair without the shared-middle structure stays
        // conservative.
        assert_eq!(d[x.index()], Toggle::Unknown);
    }

    #[test]
    fn compatibility_rules() {
        assert!(Toggle::One.compatible(V9::R));
        assert!(Toggle::One.compatible(V9::XX));
        assert!(Toggle::One.compatible(V9::X0));
        assert!(!Toggle::One.compatible(V9::S0));
        assert!(!Toggle::One.compatible(V9::S1));
        assert!(Toggle::Zero.compatible(V9::S1));
        assert!(!Toggle::Zero.compatible(V9::R));
        assert!(Toggle::Unknown.compatible(V9::F));
    }
}
