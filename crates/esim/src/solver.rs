//! Backward-Euler transient engine for switch-level RC networks.
//!
//! Each timestep solves the nodal equation
//! `(C/Δt + G(v)) · v(t) = C/Δt · v(t−Δt) + I_fixed`
//! over the internal nodes, where `G` collects device conductances
//! evaluated at the previous step's voltages (semi-implicit) and `I_fixed`
//! the currents injected through devices tied to rails or driven nodes.
//! Backward Euler is unconditionally stable, so large steps double as a DC
//! solver (see [`dc_operating_point`]).
//!
//! The conductance law is a velocity-saturated switch:
//! `g = (w / R_on) · clamp((V_ov / (VDD − Vt)), 0, 1)^α` with the overdrive
//! `V_ov = Vgs − Vt` (nMOS) or `Vsg − |Vt|` (pMOS). This is deliberately
//! simple — the paper's vector-dependence phenomenon is topological (which
//! devices are ON, what internal charge is exposed), and this model keeps
//! exactly that physics while staying fast enough to characterize whole
//! libraries.

use sta_cells::{Corner, Technology};

use crate::network::{MosType, NodeKind, SimNetwork, SimNodeId};
use crate::waveform::Waveform;

/// Configuration of a transient run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransientConfig {
    /// Timestep, ps.
    pub dt: f64,
    /// Simulate at least this long, ps.
    pub t_min: f64,
    /// Hard stop, ps.
    pub t_max: f64,
    /// Consider the network settled when no internal node moved more than
    /// [`TransientConfig::settle_tol`] volts over this window, ps.
    pub settle_window: f64,
    /// Settle tolerance, volts.
    pub settle_tol: f64,
}

impl TransientConfig {
    /// A reasonable default for a transition of the given input slew: step
    /// fine enough to resolve the ramp, horizon long enough to settle.
    ///
    /// `t_min` must cover the stimulus onset *and* the full input ramp plus
    /// slack, otherwise a slow-starting input looks "settled" before it
    /// ever moves — cell simulations start their ramps a few tens of ps
    /// into the window.
    pub fn for_transition(t_in: f64) -> Self {
        let dt = (t_in / 60.0).clamp(0.25, 4.0);
        TransientConfig {
            dt,
            t_min: 2.0 * t_in + 150.0,
            t_max: t_in * 4.0 + 40_000.0,
            settle_window: 40.0 * dt,
            // Per-step motion threshold. An exponential tail with time
            // constant τ still moves (ΔV/τ)·dt per step, so stopping at a
            // *fixed* per-step threshold would abandon slow nodes far from
            // the rail. Scaling with dt bounds the remaining swing at
            // stop to ΔV < τ · tol / dt ≈ 1 % for τ up to ~2 ns.
            settle_tol: 5e-6 * dt,
        }
    }
}

/// Result of a transient run.
#[derive(Clone, Debug, PartialEq)]
pub struct TransientOutcome {
    /// Recorded node waveforms, in the order requested.
    pub waves: Vec<(SimNodeId, Waveform)>,
    /// Final voltage of every node.
    pub end_voltages: Vec<f64>,
    /// Time reached, ps.
    pub end_time: f64,
}

/// Runs a transient analysis from the given initial node voltages.
///
/// `init` must provide one voltage per node (rail and driven entries are
/// overwritten from their definitions). The waveforms of nodes listed in
/// `record` are sampled every step.
///
/// # Panics
///
/// Panics if `init.len() != net.num_nodes()` or the nodal matrix is
/// singular (an internal node with neither capacitance nor any conducting
/// path — the cell builder always attaches capacitance, so this indicates
/// a malformed hand-built network).
pub fn simulate(
    net: &SimNetwork,
    tech: &Technology,
    corner: Corner,
    init: &[f64],
    record: &[SimNodeId],
    cfg: &TransientConfig,
) -> TransientOutcome {
    assert_eq!(init.len(), net.num_nodes(), "one initial voltage per node");
    let mut state = State::new(net, tech, corner, init.to_vec());
    let mut traces: Vec<Vec<(f64, f64)>> = record
        .iter()
        .map(|&id| vec![(0.0, state.v[id.index()])])
        .collect();

    let window_steps = ((cfg.settle_window / cfg.dt).ceil() as usize).max(2);
    let mut recent_motion: Vec<f64> = Vec::new();
    let mut t = 0.0;
    let mut dt = cfg.dt;
    // Tail acceleration: once past the stimulus window the network decays
    // exponentially, so the (unconditionally stable) backward-Euler step
    // can grow geometrically without hurting the 20/50/80 % crossing
    // accuracy that was resolved during the fine phase.
    let coarse_after = 0.8 * cfg.t_min;
    let dt_cap = (cfg.dt * 24.0).min(16.0);
    while t < cfg.t_max {
        if t > coarse_after && dt < dt_cap {
            dt = (dt * 1.06).min(dt_cap);
        }
        t += dt;
        let motion = state.step(t, dt);
        for (trace, &id) in traces.iter_mut().zip(record) {
            trace.push((t, state.v[id.index()]));
        }
        // Normalize the motion to the nominal step so the settle
        // criterion is step-size independent.
        recent_motion.push(motion * cfg.dt / dt);
        if recent_motion.len() > window_steps {
            recent_motion.remove(0);
        }
        let settled = recent_motion.len() == window_steps
            && recent_motion.iter().all(|&m| m < cfg.settle_tol);
        if t >= cfg.t_min && settled {
            break;
        }
    }
    TransientOutcome {
        waves: record
            .iter()
            .copied()
            .zip(traces.into_iter().map(Waveform::new))
            .collect(),
        end_voltages: state.v,
        end_time: t,
    }
}

/// Computes a DC operating point by running backward Euler with a huge
/// timestep until the voltages stop moving (each giant step is one fixed
/// point iteration of the nonlinear DC problem).
///
/// Nodes with no conducting path to any fixed node keep their `init_guess`
/// voltage — that is the physically right behaviour for isolated internal
/// nodes holding charge.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn dc_operating_point(
    net: &SimNetwork,
    tech: &Technology,
    corner: Corner,
    init_guess: &[f64],
) -> Vec<f64> {
    assert_eq!(init_guess.len(), net.num_nodes());
    let mut state = State::new(net, tech, corner, init_guess.to_vec());
    // Waveform time 0 values are used for driven nodes.
    for iter in 0..200 {
        let motion = state.step(0.0, 1e9);
        if motion < 1e-7 && iter >= 3 {
            break;
        }
    }
    state.v
}

struct State<'a> {
    net: &'a SimNetwork,
    tech: &'a Technology,
    corner: Corner,
    /// Current node voltages.
    v: Vec<f64>,
    /// Dense index of internal nodes (usize::MAX for fixed nodes).
    int_index: Vec<usize>,
    internals: Vec<usize>,
    /// Scratch matrices for the solve.
    a: Vec<f64>,
    rhs: Vec<f64>,
    perm: Vec<usize>,
}

impl<'a> State<'a> {
    fn new(net: &'a SimNetwork, tech: &'a Technology, corner: Corner, mut v: Vec<f64>) -> Self {
        let mut int_index = vec![usize::MAX; net.num_nodes()];
        let mut internals = Vec::new();
        for (i, node) in net.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Internal => {
                    int_index[i] = internals.len();
                    internals.push(i);
                }
                NodeKind::Ground => v[i] = 0.0,
                NodeKind::Supply => v[i] = corner.vdd,
                NodeKind::Driven(w) => v[i] = w.at(0.0),
            }
        }
        let n = internals.len();
        State {
            net,
            tech,
            corner,
            v,
            int_index,
            internals,
            a: vec![0.0; n * n],
            rhs: vec![0.0; n],
            perm: vec![0; n],
        }
    }

    fn device_conductance(&self, di: usize) -> f64 {
        let dev = &self.net.devices[di];
        let vg = self.v[dev.gate.index()];
        let va = self.v[dev.a.index()];
        let vb = self.v[dev.b.index()];
        let t = self.corner.temperature;
        let (overdrive, vt, r_on) = match dev.mos {
            MosType::N => {
                let vt = self.tech.vt_n_at(t);
                (vg - va.min(vb) - vt, vt, self.tech.r_n_eff(dev.width, t))
            }
            MosType::P => {
                let vt = self.tech.vt_p_at(t);
                (va.max(vb) - vg - vt, vt, self.tech.r_p_eff(dev.width, t))
            }
        };
        if overdrive <= 0.0 {
            return 0.0;
        }
        let span = (self.corner.vdd - vt).max(0.05);
        let x = (overdrive / span).min(1.0);
        x.powf(self.tech.alpha) / r_on
    }

    /// One backward-Euler step to time `t`; returns the maximum voltage
    /// change over internal nodes.
    fn step(&mut self, t: f64, dt: f64) -> f64 {
        // Update driven nodes.
        for (i, node) in self.net.nodes.iter().enumerate() {
            if let NodeKind::Driven(w) = &node.kind {
                self.v[i] = w.at(t);
            }
        }
        let n = self.internals.len();
        if n == 0 {
            return 0.0;
        }
        self.a.iter_mut().for_each(|x| *x = 0.0);
        self.rhs.iter_mut().for_each(|x| *x = 0.0);
        // Capacitive terms.
        for (k, &ni) in self.internals.iter().enumerate() {
            let c_over_dt = self.net.nodes[ni].cap / dt;
            self.a[k * n + k] += c_over_dt;
            self.rhs[k] += c_over_dt * self.v[ni];
        }
        // Device conductances.
        for di in 0..self.net.devices.len() {
            let g = self.device_conductance(di);
            if g == 0.0 {
                continue;
            }
            let dev = &self.net.devices[di];
            let (ia, ib) = (dev.a.index(), dev.b.index());
            let (ka, kb) = (self.int_index[ia], self.int_index[ib]);
            match (ka != usize::MAX, kb != usize::MAX) {
                (true, true) => {
                    self.a[ka * n + ka] += g;
                    self.a[kb * n + kb] += g;
                    self.a[ka * n + kb] -= g;
                    self.a[kb * n + ka] -= g;
                }
                (true, false) => {
                    self.a[ka * n + ka] += g;
                    self.rhs[ka] += g * self.v[ib];
                }
                (false, true) => {
                    self.a[kb * n + kb] += g;
                    self.rhs[kb] += g * self.v[ia];
                }
                (false, false) => {}
            }
        }
        let solution = solve_dense(&mut self.a, &mut self.rhs, &mut self.perm, n);
        let mut max_delta: f64 = 0.0;
        for (k, &ni) in self.internals.iter().enumerate() {
            max_delta = max_delta.max((solution[k] - self.v[ni]).abs());
            self.v[ni] = solution[k];
        }
        max_delta
    }
}

/// In-place Gaussian elimination with partial pivoting on a dense `n × n`
/// system. Returns the solution (stored back into `rhs`).
fn solve_dense<'b>(a: &mut [f64], rhs: &'b mut [f64], perm: &mut [usize], n: usize) -> &'b [f64] {
    for (i, p) in perm.iter_mut().enumerate().take(n) {
        *p = i;
    }
    for col in 0..n {
        // Pivot.
        let mut best = col;
        let mut best_abs = a[perm[col] * n + col].abs();
        for row in col + 1..n {
            let v = a[perm[row] * n + col].abs();
            if v > best_abs {
                best = row;
                best_abs = v;
            }
        }
        assert!(best_abs > 1e-18, "singular nodal matrix");
        perm.swap(col, best);
        let prow = perm[col];
        let pivot = a[prow * n + col];
        for &r in &perm[col + 1..n] {
            let factor = a[r * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            a[r * n + col] = 0.0;
            for k in col + 1..n {
                a[r * n + k] -= factor * a[prow * n + k];
            }
            rhs[r] -= factor * rhs[prow];
        }
    }
    // Back substitution into a scratch ordering, then write back.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let r = perm[col];
        let mut acc = rhs[r];
        for k in col + 1..n {
            acc -= a[r * n + k] * x[k];
        }
        x[col] = acc / a[r * n + col];
    }
    rhs[..n].copy_from_slice(&x);
    rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{MosType, NodeKind, SimDevice, SimNetwork};
    use sta_cells::Edge;

    fn inverter_net(tech: &Technology) -> (SimNetwork, SimNodeId, SimNodeId) {
        let mut net = SimNetwork::new();
        let gnd = net.add_node(NodeKind::Ground, 0.0, "gnd");
        let vdd = net.add_node(NodeKind::Supply, 0.0, "vdd");
        let a = net.add_node(NodeKind::Driven(Waveform::constant(0.0)), 0.0, "A");
        let z = net.add_node(NodeKind::Internal, 0.0, "Z");
        net.add_cap(z, 2.0 * tech.c_drain + 3.0); // self + load
        net.add_device(SimDevice {
            gate: a,
            a: z,
            b: gnd,
            mos: MosType::N,
            width: 1.0,
        });
        net.add_device(SimDevice {
            gate: a,
            a: vdd,
            b: z,
            mos: MosType::P,
            width: 2.0,
        });
        (net, a, z)
    }

    #[test]
    fn dc_inverter_levels() {
        let tech = Technology::n130();
        let corner = Corner::nominal(&tech);
        let (net, _, z) = inverter_net(&tech);
        // Input low -> output high.
        let v = dc_operating_point(&net, &tech, corner, &vec![0.0; net.num_nodes()]);
        assert!(
            (v[z.index()] - corner.vdd).abs() < 1e-3,
            "Z = {}",
            v[z.index()]
        );
    }

    #[test]
    fn transient_inverter_switches_and_settles() {
        let tech = Technology::n130();
        let corner = Corner::nominal(&tech);
        let (mut net, a, z) = inverter_net(&tech);
        // Start with input low, output high; ramp the input up.
        net.set_drive(a, Waveform::ramp(50.0, 60.0, corner.vdd, Edge::Rise));
        let mut init = vec![0.0; net.num_nodes()];
        init[z.index()] = corner.vdd;
        let cfg = TransientConfig::for_transition(60.0);
        let out = simulate(&net, &tech, corner, &init, &[z], &cfg);
        let wave = &out.waves[0].1;
        // Output must fall to (near) 0 after the input rise.
        assert!(wave.final_value() < 0.02, "final {}", wave.final_value());
        let t50 = wave.t50(corner.vdd, Edge::Fall).expect("output fell");
        assert!(t50 > 50.0, "output switches after the input starts");
        // Delay from input 50% (80 ps) should be positive and modest.
        let delay = t50 - 80.0;
        assert!(delay > 0.0 && delay < 500.0, "delay = {delay}");
    }

    #[test]
    fn heavier_load_is_slower() {
        let tech = Technology::n90();
        let corner = Corner::nominal(&tech);
        let delay_with_load = |load: f64| {
            let (mut net, a, z) = inverter_net(&tech);
            net.add_cap(z, load);
            net.set_drive(a, Waveform::ramp(20.0, 40.0, corner.vdd, Edge::Rise));
            let mut init = vec![0.0; net.num_nodes()];
            init[z.index()] = corner.vdd;
            let cfg = TransientConfig::for_transition(40.0);
            let out = simulate(&net, &tech, corner, &init, &[z], &cfg);
            out.waves[0].1.t50(corner.vdd, Edge::Fall).unwrap() - 40.0
        };
        let d1 = delay_with_load(1.0);
        let d2 = delay_with_load(8.0);
        assert!(d2 > d1 * 1.5, "d1={d1} d2={d2}");
    }

    #[test]
    fn hot_is_slower_than_cold() {
        let tech = Technology::n65();
        let delay_at = |temperature: f64| {
            let corner = Corner {
                temperature,
                vdd: tech.vdd,
            };
            let (mut net, a, z) = inverter_net(&tech);
            net.set_drive(a, Waveform::ramp(20.0, 40.0, corner.vdd, Edge::Rise));
            let mut init = vec![0.0; net.num_nodes()];
            init[z.index()] = corner.vdd;
            let cfg = TransientConfig::for_transition(40.0);
            let out = simulate(&net, &tech, corner, &init, &[z], &cfg);
            out.waves[0].1.t50(corner.vdd, Edge::Fall).unwrap() - 40.0
        };
        assert!(delay_at(125.0) > delay_at(25.0));
    }

    #[test]
    fn isolated_node_holds_charge() {
        let tech = Technology::n90();
        let corner = Corner::nominal(&tech);
        let mut net = SimNetwork::new();
        let _gnd = net.add_node(NodeKind::Ground, 0.0, "gnd");
        let x = net.add_node(NodeKind::Internal, 1.0, "x");
        let mut init = vec![0.0; net.num_nodes()];
        init[x.index()] = 0.7;
        let v = dc_operating_point(&net, &tech, corner, &init);
        assert!((v[x.index()] - 0.7).abs() < 1e-12);
    }

    /// Numerical anchor: discharging a capacitor through a fully-on
    /// transistor must follow the analytic RC exponential within the
    /// backward-Euler error bound.
    #[test]
    fn transient_matches_analytic_rc_decay() {
        let tech = Technology::n130();
        let corner = Corner::nominal(&tech);
        let mut net = SimNetwork::new();
        let gnd = net.add_node(NodeKind::Ground, 0.0, "gnd");
        // Gate held at VDD: the nMOS is fully on for the whole decay.
        let gate = net.add_node(NodeKind::Driven(Waveform::constant(corner.vdd)), 0.0, "g");
        let x = net.add_node(NodeKind::Internal, 10.0, "x"); // 10 fF
        net.add_device(SimDevice {
            gate,
            a: x,
            b: gnd,
            mos: MosType::N,
            width: 1.0,
        });
        let mut init = vec![0.0; net.num_nodes()];
        // Start the capacitor at a LOW voltage so Vgs stays >> Vt and the
        // conductance is the constant on-value throughout the decay.
        let v0 = 0.2 * corner.vdd;
        init[x.index()] = v0;
        let cfg = TransientConfig {
            dt: 0.5,
            t_min: 300.0,
            t_max: 2_000.0,
            settle_window: 50.0,
            settle_tol: 1e-9,
        };
        let out = simulate(&net, &tech, corner, &init, &[x], &cfg);
        let wave = &out.waves[0].1;
        // Conductance at Vg=VDD, source near 0: g = (1/r_n)·x^alpha with
        // x = (VDD − Vt)/(VDD − Vt) = 1 → g = 1/r_n → τ = r_n · C.
        let tau = tech.r_n * 10.0; // kΩ·fF = ps
        for &t in &[20.0, 60.0, 120.0] {
            let analytic = v0 * (-t / tau).exp();
            let got = wave.at(t);
            let err = (got - analytic).abs() / v0;
            assert!(
                err < 0.05,
                "t={t}: got {got:.4}, analytic {analytic:.4} (tau {tau})"
            );
        }
    }

    #[test]
    fn solve_dense_solves_known_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut rhs = vec![5.0, 10.0];
        let mut perm = vec![0, 0];
        let x = solve_dense(&mut a, &mut rhs, &mut perm, 2);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
