//! Golden path-level electrical simulation.
//!
//! A path is simulated stage by stage: every gate on the path is simulated
//! with the *actual measured output waveform* of the previous gate as its
//! input, its side pins held at the path's sensitization values, and its
//! real output load. The resulting per-gate 50 %–50 % delays sum to the
//! path delay — this is the reference ("electrical simulation") column of
//! the paper's Tables 5 and 7–9.

use sta_cells::{Cell, Corner, Edge, SensVector, Technology};

use crate::cellsim::{simulate_arc, ArcSimOutcome, Drive};
use crate::waveform::Waveform;
use crate::EsimError;

/// One gate on a path to be electrically simulated.
#[derive(Clone, Debug)]
pub struct PathStage<'a> {
    /// The cell type of this gate.
    pub cell: &'a Cell,
    /// The sensitization vector in force (includes the traversed pin).
    pub vector: &'a SensVector,
    /// Output load in fF (fanout input caps + wire).
    pub load_ff: f64,
}

/// Per-gate measurement from a golden path simulation.
#[derive(Clone, Debug)]
pub struct StageMeasurement {
    /// 50 %-to-50 % gate delay, ps.
    pub delay: f64,
    /// Output transition time, ps.
    pub output_slew: f64,
    /// Edge at the gate output.
    pub output_edge: Edge,
}

/// Result of simulating a whole path.
#[derive(Clone, Debug)]
pub struct PathMeasurement {
    /// Per-gate measurements in path order.
    pub stages: Vec<StageMeasurement>,
    /// Total path delay (sum of stage delays), ps.
    pub total_delay: f64,
    /// Edge at the path endpoint.
    pub final_edge: Edge,
}

/// Simulates a path launched with `launch_edge` and input transition time
/// `t_in` ps at the first gate's traversed pin.
///
/// # Errors
///
/// Propagates any [`EsimError`] from the underlying cell simulations
/// (e.g. a vector that does not actually sensitize its pin).
pub fn simulate_path(
    stages: &[PathStage<'_>],
    tech: &Technology,
    corner: Corner,
    launch_edge: Edge,
    t_in: f64,
) -> Result<PathMeasurement, EsimError> {
    let mut measurements = Vec::with_capacity(stages.len());
    let mut edge = launch_edge;
    let mut wave: Option<Waveform> = None;
    let mut total = 0.0;
    for stage in stages {
        let outcome: ArcSimOutcome = match &wave {
            None => simulate_arc(
                stage.cell,
                tech,
                corner,
                stage.vector,
                edge,
                Drive::Ramp { transition: t_in },
                stage.load_ff,
            )?,
            Some(w) => simulate_arc(
                stage.cell,
                tech,
                corner,
                stage.vector,
                edge,
                Drive::Wave(w),
                stage.load_ff,
            )?,
        };
        total += outcome.delay;
        edge = outcome.output_edge;
        measurements.push(StageMeasurement {
            delay: outcome.delay,
            output_slew: outcome.output_slew,
            output_edge: outcome.output_edge,
        });
        wave = Some(outcome.wave);
    }
    Ok(PathMeasurement {
        stages: measurements,
        total_delay: total,
        final_edge: edge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Library;

    /// A chain of four inverters: delays accumulate, edges alternate.
    #[test]
    fn inverter_chain() {
        let lib = Library::standard();
        let inv = lib.cell_by_name("INV").unwrap();
        let tech = Technology::n90();
        let corner = Corner::nominal(&tech);
        let v = &inv.vectors_of(0)[0];
        let stages: Vec<PathStage<'_>> = (0..4)
            .map(|_| PathStage {
                cell: inv,
                vector: v,
                load_ff: 3.0,
            })
            .collect();
        let m = simulate_path(&stages, &tech, corner, Edge::Rise, 60.0).unwrap();
        assert_eq!(m.stages.len(), 4);
        assert_eq!(m.final_edge, Edge::Rise); // even number of inversions
        assert!(m.total_delay > 0.0);
        let sum: f64 = m.stages.iter().map(|s| s.delay).sum();
        assert!((sum - m.total_delay).abs() < 1e-9);
        // Later stages see a realistic (non-ideal) input slew; every stage
        // delay must still be positive and sane.
        for s in &m.stages {
            assert!(s.delay > 0.0 && s.delay < 500.0);
            assert!(s.output_slew > 0.0);
        }
    }

    /// Path delay through an AO22 depends on the sensitization vector of
    /// the AO22 — the path-level version of the paper's Table 5.
    #[test]
    fn path_delay_depends_on_complex_gate_vector() {
        let lib = Library::standard();
        let inv = lib.cell_by_name("INV").unwrap();
        let ao22 = lib.cell_by_name("AO22").unwrap();
        let tech = Technology::n130();
        let corner = Corner::nominal(&tech);
        let vi = &inv.vectors_of(0)[0];
        let run = |case: usize| {
            let stages = vec![
                PathStage {
                    cell: inv,
                    vector: vi,
                    load_ff: 5.0,
                },
                PathStage {
                    cell: ao22,
                    vector: &ao22.vectors_of(0)[case - 1],
                    load_ff: 5.0,
                },
                PathStage {
                    cell: inv,
                    vector: vi,
                    load_ff: 5.0,
                },
            ];
            // Launch falling so the AO22 sees a falling input (INV flips
            // the edge): paper's strongest effect is AO22 input-A fall.
            simulate_path(&stages, &tech, corner, Edge::Rise, 60.0)
                .unwrap()
                .total_delay
        };
        let (d1, d2) = (run(1), run(2));
        assert!(
            d2 > d1 * 1.01,
            "case-2 path ({d2} ps) should be >1% slower than case-1 ({d1} ps)"
        );
    }
}
