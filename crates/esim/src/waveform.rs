//! Sampled voltage waveforms and timing measurements.
//!
//! All times are picoseconds, voltages are volts. Delay is measured at the
//! 50 % supply crossing; transition time follows the common 20–80 %
//! convention, rescaled to the full swing (a linear full-swing ramp of
//! duration `D` therefore reports a transition time of exactly `D`).

use sta_cells::Edge;

/// A voltage waveform sampled at (time, voltage) points with strictly
/// increasing times. Between samples the waveform is linear; outside the
/// sampled range it holds the first/last value.
#[derive(Clone, Debug, PartialEq)]
pub struct Waveform {
    points: Vec<(f64, f64)>,
}

impl Waveform {
    /// Creates a waveform from sample points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or times are not strictly increasing.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "waveform needs at least one sample");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "times must be strictly increasing");
        }
        Waveform { points }
    }

    /// A constant waveform.
    pub fn constant(v: f64) -> Self {
        Waveform {
            points: vec![(0.0, v)],
        }
    }

    /// A linear full-swing ramp starting at `t0` with duration
    /// `transition` ps: rising from 0 to `vdd` or falling from `vdd` to 0.
    pub fn ramp(t0: f64, transition: f64, vdd: f64, edge: Edge) -> Self {
        let (v0, v1) = match edge {
            Edge::Rise => (0.0, vdd),
            Edge::Fall => (vdd, 0.0),
        };
        if transition <= 0.0 {
            // An ideal step, represented with a 1 fs ramp.
            return Waveform::new(vec![(t0, v0), (t0 + 1e-3, v1)]);
        }
        Waveform::new(vec![(t0, v0), (t0 + transition, v1)])
    }

    /// The sampled points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The voltage at time `t` (linear interpolation, flat extrapolation).
    pub fn at(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the surrounding segment.
        let mut lo = 0;
        let mut hi = pts.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid].0 <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (t0, v0) = pts[lo];
        let (t1, v1) = pts[hi];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// The final (settled) voltage.
    pub fn final_value(&self) -> f64 {
        self.points[self.points.len() - 1].1
    }

    /// The last time the waveform crosses `level` in the direction of
    /// `edge` (upward for [`Edge::Rise`]), with linear interpolation.
    ///
    /// Returns `None` if no such crossing exists.
    pub fn last_crossing(&self, level: f64, edge: Edge) -> Option<f64> {
        let mut found = None;
        for w in self.points.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            let crosses = match edge {
                Edge::Rise => v0 < level && v1 >= level,
                Edge::Fall => v0 > level && v1 <= level,
            };
            if crosses {
                let f = (level - v0) / (v1 - v0);
                found = Some(t0 + f * (t1 - t0));
            }
        }
        found
    }

    /// Measures the transition time around the final `edge` transition:
    /// `(t₈₀ − t₂₀) / 0.6` for a rise (mirror-image for a fall), scaled to
    /// full swing.
    ///
    /// Returns `None` if the waveform never completes the transition.
    pub fn transition_time(&self, vdd: f64, edge: Edge) -> Option<f64> {
        let (lo, hi) = (0.2 * vdd, 0.8 * vdd);
        let (t_start, t_end) = match edge {
            Edge::Rise => (
                self.last_crossing(lo, Edge::Rise)?,
                self.last_crossing(hi, Edge::Rise)?,
            ),
            Edge::Fall => (
                self.last_crossing(hi, Edge::Fall)?,
                self.last_crossing(lo, Edge::Fall)?,
            ),
        };
        if t_end < t_start {
            return None; // non-monotone tail; no clean transition
        }
        Some((t_end - t_start) / 0.6)
    }

    /// The 50 %-VDD crossing time of the final `edge` transition.
    pub fn t50(&self, vdd: f64, edge: Edge) -> Option<f64> {
        self.last_crossing(0.5 * vdd, edge)
    }
}

/// Measures the propagation delay between an input and an output waveform:
/// difference of their 50 % crossings for the respective edges.
pub fn propagation_delay(
    input: &Waveform,
    in_edge: Edge,
    output: &Waveform,
    out_edge: Edge,
    vdd: f64,
) -> Option<f64> {
    Some(output.t50(vdd, out_edge)? - input.t50(vdd, in_edge)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_measurements() {
        let w = Waveform::ramp(100.0, 60.0, 1.2, Edge::Rise);
        assert!((w.t50(1.2, Edge::Rise).unwrap() - 130.0).abs() < 1e-9);
        assert!((w.transition_time(1.2, Edge::Rise).unwrap() - 60.0).abs() < 1e-9);
        assert_eq!(w.at(50.0), 0.0);
        assert_eq!(w.at(1000.0), 1.2);
        assert!((w.at(130.0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn falling_ramp() {
        let w = Waveform::ramp(0.0, 100.0, 1.0, Edge::Fall);
        assert!((w.t50(1.0, Edge::Fall).unwrap() - 50.0).abs() < 1e-9);
        assert!((w.transition_time(1.0, Edge::Fall).unwrap() - 100.0).abs() < 1e-9);
        assert!(w.t50(1.0, Edge::Rise).is_none());
    }

    #[test]
    fn last_crossing_picks_final_transition() {
        // A glitch up then the real rise.
        let w = Waveform::new(vec![(0.0, 0.0), (10.0, 0.7), (20.0, 0.1), (30.0, 1.0)]);
        let t = w.last_crossing(0.5, Edge::Rise).unwrap();
        assert!(t > 20.0 && t < 30.0, "t = {t}");
    }

    #[test]
    fn delay_between_waveforms() {
        let input = Waveform::ramp(0.0, 40.0, 1.0, Edge::Rise);
        let output = Waveform::ramp(75.0, 80.0, 1.0, Edge::Fall);
        let d = propagation_delay(&input, Edge::Rise, &output, Edge::Fall, 1.0).unwrap();
        assert!((d - (115.0 - 20.0)).abs() < 1e-9);
    }

    #[test]
    fn constant_has_no_crossings() {
        let w = Waveform::constant(1.0);
        assert!(w.t50(1.0, Edge::Rise).is_none());
        assert_eq!(w.at(123.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_points_panic() {
        let _ = Waveform::new(vec![(1.0, 0.0), (1.0, 1.0)]);
    }
}
