//! Switch-level RC network representation.
//!
//! A [`SimNetwork`] is a set of electrical nodes connected by MOS devices
//! modelled as voltage-controlled conductances. Units are chosen so that
//! all arithmetic is unit-consistent without conversion factors:
//! volts, kΩ (conductance mS), fF, ps — since 1 kΩ · 1 fF = 1 ps.

use crate::waveform::Waveform;

/// Index of an electrical node within a [`SimNetwork`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SimNodeId(pub(crate) usize);

impl SimNodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What fixes (or does not fix) a node's voltage.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeKind {
    /// Ground: 0 V.
    Ground,
    /// The supply rail, at the operating VDD.
    Supply,
    /// An externally driven node following a [`Waveform`] (cell inputs).
    Driven(Waveform),
    /// A floating node solved by the transient engine.
    Internal,
}

/// One electrical node.
#[derive(Clone, Debug, PartialEq)]
pub struct SimNode {
    /// Drive kind.
    pub kind: NodeKind,
    /// Lumped capacitance to ground, fF.
    pub cap: f64,
    /// Debug label (e.g. `"Z"`, `"s0"`, `"s0.pdn.1"`).
    pub label: String,
}

/// MOS device channel type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MosType {
    /// n-channel: conducts when the gate is high.
    N,
    /// p-channel: conducts when the gate is low.
    P,
}

/// A transistor: a conductance between `a` and `b` controlled by the
/// voltage at `gate`.
#[derive(Clone, Debug, PartialEq)]
pub struct SimDevice {
    /// Controlling node.
    pub gate: SimNodeId,
    /// First channel terminal.
    pub a: SimNodeId,
    /// Second channel terminal.
    pub b: SimNodeId,
    /// Channel type.
    pub mos: MosType,
    /// Width in unit widths (divides the technology on-resistance).
    pub width: f64,
}

/// A switch-level RC network.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimNetwork {
    pub(crate) nodes: Vec<SimNode>,
    pub(crate) devices: Vec<SimDevice>,
}

impl SimNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        SimNetwork::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, cap: f64, label: impl Into<String>) -> SimNodeId {
        let id = SimNodeId(self.nodes.len());
        self.nodes.push(SimNode {
            kind,
            cap,
            label: label.into(),
        });
        id
    }

    /// Adds capacitance to an existing node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn add_cap(&mut self, node: SimNodeId, cap: f64) {
        self.nodes[node.0].cap += cap;
    }

    /// Adds a device.
    pub fn add_device(&mut self, device: SimDevice) {
        self.devices.push(device);
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: SimNodeId) -> &SimNode {
        &self.nodes[id.0]
    }

    /// Looks a node up by label.
    pub fn node_by_label(&self, label: &str) -> Option<SimNodeId> {
        self.nodes
            .iter()
            .position(|n| n.label == label)
            .map(SimNodeId)
    }

    /// Replaces the waveform of a driven node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not [`NodeKind::Driven`].
    pub fn set_drive(&mut self, node: SimNodeId, wave: Waveform) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Driven(w) => *w = wave,
            other => panic!("node {:?} is not driven (kind {:?})", node, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut net = SimNetwork::new();
        let gnd = net.add_node(NodeKind::Ground, 0.0, "gnd");
        let vdd = net.add_node(NodeKind::Supply, 0.0, "vdd");
        let inp = net.add_node(NodeKind::Driven(Waveform::constant(0.0)), 0.0, "A");
        let out = net.add_node(NodeKind::Internal, 2.0, "Z");
        net.add_device(SimDevice {
            gate: inp,
            a: out,
            b: gnd,
            mos: MosType::N,
            width: 1.0,
        });
        net.add_device(SimDevice {
            gate: inp,
            a: vdd,
            b: out,
            mos: MosType::P,
            width: 2.0,
        });
        net.add_cap(out, 1.5);
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_devices(), 2);
        assert_eq!(net.node(out).cap, 3.5);
        assert_eq!(net.node_by_label("Z"), Some(out));
        assert_eq!(net.node_by_label("nope"), None);
    }

    #[test]
    #[should_panic(expected = "is not driven")]
    fn set_drive_requires_driven_node() {
        let mut net = SimNetwork::new();
        let n = net.add_node(NodeKind::Internal, 1.0, "x");
        net.set_drive(n, Waveform::constant(1.0));
    }
}
