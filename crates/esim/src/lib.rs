//! Switch-level RC electrical simulator — the reproduction's substitute for
//! the SPICE/Spectre runs of the paper.
//!
//! The paper characterizes cells and validates paths with transistor-level
//! electrical simulation of foundry libraries. Those models are not
//! available here, so this crate implements the closest synthetic
//! equivalent that preserves the phenomenon under study: a switch-level RC
//! transient simulator in which every transistor of a cell's derived
//! topology (see `sta-cells`) is a voltage-controlled conductance and every
//! internal series node carries parasitic capacitance. That is precisely
//! the physics the paper identifies as the root cause of
//! sensitization-vector-dependent delay (§III): parallel ON devices reduce
//! the effective charging resistance, and ON devices of the opposite
//! network expose internal charge that must also be (dis)charged.
//!
//! * [`waveform`] — sampled waveforms and 50 % / 20–80 % measurements;
//! * [`network`] — the RC network representation;
//! * [`solver`] — backward-Euler transient and DC engines;
//! * [`cellsim`] — building and simulating one cell instance;
//! * [`pathsim`] — golden stage-by-stage path simulation.
//!
//! # Example
//!
//! ```
//! use sta_cells::{Corner, Edge, Library, Technology};
//! use sta_esim::cellsim::{simulate_arc, Drive};
//!
//! # fn main() -> Result<(), sta_esim::EsimError> {
//! let lib = Library::standard();
//! let ao22 = lib.cell_by_name("AO22").expect("standard cell");
//! let tech = Technology::n65();
//! let corner = Corner::nominal(&tech);
//! // Falling transition through input A, sensitized by Case 1 (B=1, C=0, D=0).
//! let outcome = simulate_arc(
//!     ao22,
//!     &tech,
//!     corner,
//!     &ao22.vectors_of(0)[0],
//!     Edge::Fall,
//!     Drive::Ramp { transition: 60.0 },
//!     5.0,
//! )?;
//! assert!(outcome.delay > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellsim;
pub mod network;
pub mod pathsim;
pub mod solver;
pub mod vcd;
pub mod waveform;

pub use cellsim::{build_cell_network, cell_input_cap, input_capacitance, ArcSimOutcome, Drive};
pub use network::{MosType, NodeKind, SimDevice, SimNetwork, SimNodeId};
pub use pathsim::{simulate_path, PathMeasurement, PathStage};
pub use solver::{dc_operating_point, simulate, TransientConfig, TransientOutcome};
pub use vcd::write_vcd;
pub use waveform::{propagation_delay, Waveform};

use std::error::Error;
use std::fmt;

/// Errors from electrical simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EsimError {
    /// The observed node never completed the expected transition (the
    /// applied vector may not sensitize the pin, or the horizon was too
    /// short).
    NoTransition {
        /// Cell being simulated.
        cell: String,
        /// Node that failed to transition.
        node: String,
    },
    /// The drive waveform contains no transition of the requested edge.
    NoInputTransition,
}

impl fmt::Display for EsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EsimError::NoTransition { cell, node } => {
                write!(
                    f,
                    "node {node} of cell {cell} never completed the expected transition"
                )
            }
            EsimError::NoInputTransition => {
                write!(f, "drive waveform has no transition of the requested edge")
            }
        }
    }
}

impl Error for EsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = EsimError::NoTransition {
            cell: "AO22".into(),
            node: "Z".into(),
        };
        assert!(e.to_string().contains("AO22"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EsimError>();
    }
}
