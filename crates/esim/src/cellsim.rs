//! Cell-level electrical simulation: building the RC network of a cell
//! instance and measuring sensitized transitions.

use sta_cells::topology::Signal;
use sta_cells::{Cell, Corner, Edge, SensVector, SpNet, Technology};

use crate::network::{MosType, NodeKind, SimDevice, SimNetwork, SimNodeId};
use crate::solver::{dc_operating_point, simulate, TransientConfig};
use crate::waveform::Waveform;
use crate::EsimError;

/// A cell instance's RC network plus the node bookkeeping needed to drive
/// and observe it.
#[derive(Clone, Debug)]
pub struct CellNetwork {
    /// The electrical network.
    pub net: SimNetwork,
    /// Ground node.
    pub gnd: SimNodeId,
    /// Supply node.
    pub vdd: SimNodeId,
    /// One driven node per cell input pin.
    pub pin_nodes: Vec<SimNodeId>,
    /// Output node of each stage; the last one is the cell output.
    pub stage_outputs: Vec<SimNodeId>,
    /// Initial-guess voltage per node for DC settling: rails at their
    /// levels, PDN internal nodes low, PUN internal nodes high.
    pub init_guess: Vec<f64>,
}

impl CellNetwork {
    /// The cell output node.
    pub fn output(&self) -> SimNodeId {
        *self
            .stage_outputs
            .last()
            .expect("cells have at least one stage")
    }
}

/// Builds the switch-level network of `cell` in `tech` at supply `vdd_v`.
///
/// Capacitances attached: gate capacitance (`width · c_gate`) on every
/// internal gating node, junction capacitance (`width · c_drain`) on both
/// channel terminals of every device, and a small floor capacitance on
/// every internal node so the nodal matrix stays regular.
pub fn build_cell_network(cell: &Cell, tech: &Technology, vdd_v: f64) -> CellNetwork {
    let topo = cell.topology();
    let mut net = SimNetwork::new();
    let gnd = net.add_node(NodeKind::Ground, 0.0, "gnd");
    let vdd = net.add_node(NodeKind::Supply, 0.0, "vdd");
    let mut init_guess = vec![0.0, vdd_v];
    let pin_nodes: Vec<SimNodeId> = (0..cell.num_pins())
        .map(|p| {
            init_guess.push(0.0);
            net.add_node(
                NodeKind::Driven(Waveform::constant(0.0)),
                0.0,
                cell.pin_names()[p as usize].clone(),
            )
        })
        .collect();
    let mut stage_outputs: Vec<SimNodeId> = Vec::new();
    for (si, stage) in topo.stages.iter().enumerate() {
        let label = if si + 1 == topo.stages.len() {
            "Z".to_string()
        } else {
            format!("s{si}")
        };
        let out = net.add_node(NodeKind::Internal, 0.01, &label);
        init_guess.push(vdd_v); // refined below by DC settling
        let resolve = |s: Signal| -> SimNodeId {
            match s {
                Signal::Pin(p) => pin_nodes[p as usize],
                Signal::Stage(i) => stage_outputs[i],
            }
        };
        // PDN between output and ground.
        flatten(
            &mut net,
            &mut init_guess,
            &stage.pulldown,
            out,
            gnd,
            MosType::N,
            stage.nmos_width,
            &resolve,
            &format!("{label}.pdn"),
            0.0,
        );
        // PUN between supply and output (dual network).
        flatten(
            &mut net,
            &mut init_guess,
            &stage.pullup(),
            vdd,
            out,
            MosType::P,
            stage.pmos_width,
            &resolve,
            &format!("{label}.pun"),
            vdd_v,
        );
        stage_outputs.push(out);
    }
    // Gate and junction capacitances.
    for di in 0..net.num_devices() {
        let (gate, a, b, width) = {
            let d = &net.devices[di];
            (d.gate, d.a, d.b, d.width)
        };
        if matches!(net.node(gate).kind, NodeKind::Internal) {
            net.add_cap(gate, width * tech.c_gate);
        }
        for term in [a, b] {
            if matches!(net.node(term).kind, NodeKind::Internal) {
                net.add_cap(term, width * tech.c_drain);
            }
        }
    }
    CellNetwork {
        net,
        gnd,
        vdd,
        pin_nodes,
        stage_outputs,
        init_guess,
    }
}

#[allow(clippy::too_many_arguments)]
fn flatten(
    net: &mut SimNetwork,
    init_guess: &mut Vec<f64>,
    sp: &SpNet,
    top: SimNodeId,
    bot: SimNodeId,
    mos: MosType,
    width: f64,
    resolve: &dyn Fn(Signal) -> SimNodeId,
    prefix: &str,
    internal_guess: f64,
) {
    match sp {
        SpNet::Device(s) => net.add_device(SimDevice {
            gate: resolve(*s),
            a: top,
            b: bot,
            mos,
            width,
        }),
        SpNet::Parallel(children) => {
            for c in children {
                flatten(
                    net,
                    init_guess,
                    c,
                    top,
                    bot,
                    mos,
                    width,
                    resolve,
                    prefix,
                    internal_guess,
                );
            }
        }
        SpNet::Series(children) => {
            let mut upper = top;
            for (i, c) in children.iter().enumerate() {
                let lower = if i + 1 == children.len() {
                    bot
                } else {
                    let mid = net.add_node(
                        NodeKind::Internal,
                        0.01,
                        format!("{prefix}.x{}", net.num_nodes()),
                    );
                    init_guess.push(internal_guess);
                    mid
                };
                flatten(
                    net,
                    init_guess,
                    c,
                    upper,
                    lower,
                    mos,
                    width,
                    resolve,
                    prefix,
                    internal_guess,
                );
                upper = lower;
            }
        }
    }
}

/// The electrically derived input capacitance of a cell pin: total gate
/// width attached to the pin times the per-width gate capacitance.
///
/// (The paper obtains the same quantity by integrating the input current
/// during a transition and dividing by VDD; in a lumped-C model that
/// integral is exactly the attached capacitance, so the closed form is
/// used.)
pub fn input_capacitance(cell: &Cell, tech: &Technology, pin: u8) -> f64 {
    let mut c = 0.0;
    for stage in &cell.topology().stages {
        for s in stage.pulldown.signals() {
            if s == Signal::Pin(pin) {
                c += (stage.nmos_width + stage.pmos_width) * tech.c_gate;
            }
        }
    }
    c
}

/// Average input capacitance over all pins — the per-cell-type `Cin` used
/// in the paper's equivalent-fanout definition `Fo = Cout / Cin`.
pub fn cell_input_cap(cell: &Cell, tech: &Technology) -> f64 {
    let n = cell.num_pins();
    (0..n)
        .map(|p| input_capacitance(cell, tech, p))
        .sum::<f64>()
        / f64::from(n)
}

/// How the switching pin is driven.
#[derive(Clone, Debug)]
pub enum Drive<'a> {
    /// A linear full-swing ramp with the given transition time (ps).
    Ramp {
        /// Transition time, ps.
        transition: f64,
    },
    /// An explicit waveform (e.g. the measured output of the previous
    /// stage of a path). It is shifted so its 50 % crossing lands at a
    /// comfortable offset inside the simulation window.
    Wave(&'a Waveform),
}

/// Measured outcome of one sensitized transition through a cell.
#[derive(Clone, Debug)]
pub struct ArcSimOutcome {
    /// 50 %-to-50 % propagation delay, ps.
    pub delay: f64,
    /// Output transition time, ps (20–80 % rescaled).
    pub output_slew: f64,
    /// The output edge direction.
    pub output_edge: Edge,
    /// The full output waveform (local time axis).
    pub wave: Waveform,
}

/// Simulates a transition of `input_edge` on `vector.pin` of `cell`, with
/// the side inputs held at the vector's values and `load_ff` of load on the
/// output.
///
/// # Errors
///
/// Returns [`EsimError::NoTransition`] if the output never completes the
/// expected transition (e.g. the vector does not sensitize the pin), and
/// [`EsimError::NoInputTransition`] if the drive waveform has no crossing.
pub fn simulate_arc(
    cell: &Cell,
    tech: &Technology,
    corner: Corner,
    vector: &SensVector,
    input_edge: Edge,
    drive: Drive<'_>,
    load_ff: f64,
) -> Result<ArcSimOutcome, EsimError> {
    let mut cn = build_cell_network(cell, tech, corner.vdd);
    cn.net.add_cap(cn.output(), load_ff);
    let pin = vector.pin;
    // Drive side pins at their DC values; the switching pin starts at its
    // pre-transition level.
    let initial_level = match input_edge {
        Edge::Rise => 0.0,
        Edge::Fall => corner.vdd,
    };
    for p in 0..cell.num_pins() {
        let node = cn.pin_nodes[p as usize];
        if p == pin {
            cn.net.set_drive(node, Waveform::constant(initial_level));
            cn.init_guess[node.index()] = initial_level;
        } else {
            let v = if vector.side_value(p).unwrap_or(false) {
                corner.vdd
            } else {
                0.0
            };
            cn.net.set_drive(node, Waveform::constant(v));
            cn.init_guess[node.index()] = v;
        }
    }
    // Settle to the pre-transition operating point (this also charges any
    // exposed internal nodes — the charge-sharing mechanism of paper
    // Fig. 2b).
    let dc = dc_operating_point(&cn.net, tech, corner, &cn.init_guess);

    // Install the transition waveform.
    const T_START: f64 = 25.0;
    let (input_wave, t_in_est) = match drive {
        Drive::Ramp { transition } => (
            Waveform::ramp(T_START, transition, corner.vdd, input_edge),
            transition.max(1.0),
        ),
        Drive::Wave(w) => {
            let t50 = w
                .t50(corner.vdd, input_edge)
                .ok_or(EsimError::NoInputTransition)?;
            let slew = w.transition_time(corner.vdd, input_edge).unwrap_or(50.0);
            (w.shifted(T_START + slew - t50), slew.max(1.0))
        }
    };
    let in_t50 = input_wave
        .t50(corner.vdd, input_edge)
        .ok_or(EsimError::NoInputTransition)?;
    cn.net.set_drive(cn.pin_nodes[pin as usize], input_wave);

    let cfg = TransientConfig::for_transition(t_in_est);
    let out_node = cn.output();
    let outcome = simulate(&cn.net, tech, corner, &dc, &[out_node], &cfg);
    let wave = outcome.waves[0].1.clone();
    let output_edge = input_edge.through(vector.polarity);
    let out_t50 = wave
        .t50(corner.vdd, output_edge)
        .ok_or_else(|| EsimError::NoTransition {
            cell: cell.name().to_string(),
            node: "Z".to_string(),
        })?;
    let output_slew = wave
        .transition_time(corner.vdd, output_edge)
        .ok_or_else(|| EsimError::NoTransition {
            cell: cell.name().to_string(),
            node: "Z".to_string(),
        })?;
    Ok(ArcSimOutcome {
        delay: out_t50 - in_t50,
        output_slew,
        output_edge,
        wave,
    })
}

impl Waveform {
    /// Returns a copy shifted by `dt` ps (may be negative; samples ending
    /// before t = 0 are clamped by dropping to the first remaining point's
    /// value — simulation windows always start at 0).
    pub fn shifted(&self, dt: f64) -> Waveform {
        let pts: Vec<(f64, f64)> = self
            .points()
            .iter()
            .map(|&(t, v)| (t + dt, v))
            .filter(|&(t, _)| t >= 0.0)
            .collect();
        if pts.is_empty() {
            Waveform::constant(self.final_value())
        } else {
            Waveform::new(pts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Library;

    #[test]
    fn inverter_arc_simulates() {
        let lib = Library::standard();
        let inv = lib.cell_by_name("INV").unwrap();
        let tech = Technology::n130();
        let corner = Corner::nominal(&tech);
        let v = &inv.vectors_of(0)[0];
        let out = simulate_arc(
            inv,
            &tech,
            corner,
            v,
            Edge::Rise,
            Drive::Ramp { transition: 50.0 },
            4.0,
        )
        .unwrap();
        assert_eq!(out.output_edge, Edge::Fall);
        assert!(out.delay > 0.0 && out.delay < 400.0, "delay {}", out.delay);
        assert!(out.output_slew > 0.0 && out.output_slew < 1000.0);
    }

    /// The headline phenomenon (paper Tables 3–4): AO22 input-A *fall*
    /// delay is larger for Case 2 (C=1, D=0) than Case 1 (C=0, D=0), and
    /// Case 2 exceeds Case 3.
    #[test]
    fn ao22_fall_delay_depends_on_vector() {
        let lib = Library::standard();
        let ao22 = lib.cell_by_name("AO22").unwrap();
        let tech = Technology::n130();
        let corner = Corner::nominal(&tech);
        let load = 4.0 * cell_input_cap(ao22, &tech);
        let delay = |case: usize| {
            let v = &ao22.vectors_of(0)[case - 1];
            simulate_arc(
                ao22,
                &tech,
                corner,
                v,
                Edge::Fall,
                Drive::Ramp { transition: 60.0 },
                load,
            )
            .unwrap()
            .delay
        };
        let (d1, d2, d3) = (delay(1), delay(2), delay(3));
        assert!(d2 > d1, "case2 {d2} should exceed case1 {d1}");
        assert!(d3 > d1, "case3 {d3} should exceed case1 {d1}");
        assert!(d2 > d3, "case2 {d2} should exceed case3 {d3}");
        // Magnitude in a plausible band (paper: 12-22% for In Fall).
        let spread = (d2 - d1) / d1;
        assert!(
            spread > 0.02 && spread < 0.5,
            "spread {spread} out of band (d1={d1}, d2={d2})"
        );
    }

    /// OA12 input-C rise: Case 3 (A=B=1, both parallel nMOS on) is the
    /// fastest (paper Table 4 shows negative %diff for Cases 2/3).
    #[test]
    fn oa12_rise_case3_is_fastest() {
        let lib = Library::standard();
        let oa12 = lib.cell_by_name("OA12").unwrap();
        let tech = Technology::n90();
        let corner = Corner::nominal(&tech);
        let load = 4.0 * cell_input_cap(oa12, &tech);
        let delay = |case: usize| {
            let v = &oa12.vectors_of(2)[case - 1];
            simulate_arc(
                oa12,
                &tech,
                corner,
                v,
                Edge::Rise,
                Drive::Ramp { transition: 60.0 },
                load,
            )
            .unwrap()
            .delay
        };
        let (d1, d2, d3) = (delay(1), delay(2), delay(3));
        assert!(d3 < d1, "case3 {d3} should beat case1 {d1}");
        assert!(d3 < d2, "case3 {d3} should beat case2 {d2}");
    }

    #[test]
    fn shifted_waveform_clamps_at_zero() {
        let w = Waveform::new(vec![(10.0, 0.0), (20.0, 0.5), (30.0, 1.0)]);
        let forward = w.shifted(5.0);
        assert_eq!(forward.points()[0], (15.0, 0.0));
        // Shifting left past zero drops clipped samples.
        let back = w.shifted(-15.0);
        assert_eq!(back.points().len(), 2);
        assert_eq!(back.points()[0], (5.0, 0.5));
        // Shifting everything out of range degrades to a constant.
        let gone = w.shifted(-100.0);
        assert_eq!(gone.final_value(), 1.0);
    }

    #[test]
    fn input_capacitance_is_positive_and_additive() {
        let lib = Library::standard();
        let tech = Technology::n130();
        let nand2 = lib.cell_by_name("NAND2").unwrap();
        let c = input_capacitance(nand2, &tech, 0);
        // NAND2: nMOS width 2 + pMOS width 2 → 4 units of gate cap.
        assert!((c - 4.0 * tech.c_gate).abs() < 1e-12);
        assert!((cell_input_cap(nand2, &tech) - c).abs() < 1e-12);
    }

    #[test]
    fn wave_drive_matches_ramp_drive_roughly() {
        let lib = Library::standard();
        let inv = lib.cell_by_name("INV").unwrap();
        let tech = Technology::n90();
        let corner = Corner::nominal(&tech);
        let v = &inv.vectors_of(0)[0];
        let ramp_out = simulate_arc(
            inv,
            &tech,
            corner,
            v,
            Edge::Rise,
            Drive::Ramp { transition: 80.0 },
            3.0,
        )
        .unwrap();
        let ramp_wave = Waveform::ramp(0.0, 80.0, corner.vdd, Edge::Rise);
        let wave_out = simulate_arc(
            inv,
            &tech,
            corner,
            v,
            Edge::Rise,
            Drive::Wave(&ramp_wave),
            3.0,
        )
        .unwrap();
        let rel = (ramp_out.delay - wave_out.delay).abs() / ramp_out.delay;
        assert!(
            rel < 0.05,
            "ramp {} vs wave {}",
            ramp_out.delay,
            wave_out.delay
        );
    }
}
