//! VCD (Value Change Dump) export of analog waveforms, using the `real`
//! variable type — loadable in GTKWave and friends to inspect the
//! simulator's transients alongside digital traces.

use std::fmt::Write as _;

use crate::waveform::Waveform;

/// Writes a VCD file containing the given named waveforms.
///
/// Time is quantized to 1 fs (`timescale 1fs`) so picosecond-fraction
/// sample points survive the integer timestamp format.
///
/// # Panics
///
/// Panics if `waves` is empty or if more than 94 signals are exported
/// (single-character identifiers).
pub fn write_vcd(waves: &[(&str, &Waveform)]) -> String {
    assert!(!waves.is_empty(), "need at least one waveform");
    assert!(waves.len() <= 94, "single-character VCD identifiers");
    let mut out = String::new();
    let _ = writeln!(out, "$date sta-repro $end");
    let _ = writeln!(out, "$timescale 1fs $end");
    let _ = writeln!(out, "$scope module esim $end");
    let ids: Vec<char> = (0..waves.len())
        .map(|i| char::from(b'!' + u8::try_from(i).expect("≤ 94 signals")))
        .collect();
    for ((name, _), id) in waves.iter().zip(&ids) {
        let _ = writeln!(out, "$var real 64 {id} {name} $end");
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    // Merge-sort the sample points by time.
    let mut events: Vec<(u64, usize, f64)> = Vec::new();
    for (wi, (_, w)) in waves.iter().enumerate() {
        for &(t, v) in w.points() {
            events.push(((t * 1000.0).round().max(0.0) as u64, wi, v));
        }
    }
    events.sort_by_key(|e| e.0);
    let mut current_t = u64::MAX;
    for (t, wi, v) in events {
        if t != current_t {
            let _ = writeln!(out, "#{t}");
            current_t = t;
        }
        let _ = writeln!(out, "r{v} {}", ids[wi]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Edge;

    #[test]
    fn vcd_structure_is_sane() {
        let a = Waveform::ramp(0.0, 50.0, 1.0, Edge::Rise);
        let b = Waveform::ramp(25.0, 50.0, 1.0, Edge::Fall);
        let text = write_vcd(&[("in", &a), ("out", &b)]);
        assert!(text.contains("$timescale 1fs $end"));
        assert!(text.contains("$var real 64 ! in $end"));
        assert!(text.contains("$var real 64 \" out $end"));
        assert!(text.contains("#0"));
        assert!(text.contains("#25000"), "{text}");
        // Each sample appears as a real value change.
        assert_eq!(text.matches("\nr").count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one waveform")]
    fn empty_export_panics() {
        let _ = write_vcd(&[]);
    }
}
