#!/bin/bash
cd /root/repo
until grep -q EXIT repro-data/table6_part4.log 2>/dev/null; do sleep 60; done
(target/release/repro_table6 130 c6288 c7552 > repro-data/table6_part5.txt 2> repro-data/table6_part5.log; echo EXIT=$? >> repro-data/table6_part5.log)
