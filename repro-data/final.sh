#!/bin/bash
# Final sequence: wait for all experiment runs, assemble the report, then
# run the full test suite and benches with tee'd outputs.
cd /root/repo
until grep -q EXIT repro-data/table7_8_9.log 2>/dev/null \
   && grep -q EXIT repro-data/table6_part4.log 2>/dev/null \
   && grep -q EXIT repro-data/table6_part5.log 2>/dev/null; do sleep 120; done
./repro-data/assemble_report.sh
echo "=== report assembled ==="
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | grep -E 'test result|FAILED|error\[' | tail -30
echo "=== tests done ==="
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | tail -5
echo "=== FINAL_DONE ==="
