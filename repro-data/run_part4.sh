#!/bin/bash
# After part3: revalidate c1355 with the XOR-peephole binary + new cache.
cd /root/repo
until grep -q EXIT repro-data/table6_part3.log; do sleep 60; done
cargo build --release -p sta-bench >/dev/null 2>&1
(target/release/repro_table6 130 c1355 > repro-data/table6_part4.txt 2> repro-data/table6_part4.log; echo EXIT=$? >> repro-data/table6_part4.log)
