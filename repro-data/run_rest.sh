#!/bin/bash
# Serialized experiment runs (single-core box); waits for table6 to finish.
cd /root/repo
while pgrep -x repro_table6 >/dev/null; do sleep 10; done
target/release/repro_table1_2   > repro-data/table1_2.txt 2>&1
target/release/repro_fig2_3     > repro-data/fig2_3.txt 2>&1
target/release/repro_table3_4   > repro-data/table3_4.txt 2>&1
target/release/repro_table5     > repro-data/table5.txt 2> repro-data/table5.log
target/release/repro_ablation_model > repro-data/ablation.txt 2>&1
target/release/repro_table7_8_9 > repro-data/table7_8_9.txt 2> repro-data/table7_8_9.log
echo ALL_DONE
