#!/bin/bash
# Assembles repro_report.txt from the individual experiment outputs.
cd /root/repo
{
  echo "================================================================"
  echo " sta-repro — measured reproduction report"
  echo " (regenerate: see EXPERIMENTS.md)"
  echo "================================================================"
  echo
  echo "=== E1: Tables 1-2 ==="
  cat repro-data/table1_2.txt
  echo "=== E2: Figs. 2-3 ==="
  cat repro-data/fig2_3.txt
  echo "=== E3: Tables 3-4 ==="
  cat repro-data/table3_4.txt
  echo "=== E4: Fig. 4 + Table 5 ==="
  cat repro-data/table5.txt
  echo
  echo "=== E5: Table 6 (130nm) ==="
  echo "per-circuit rows (from the run logs; * = budget hit):"
  grep -hE '^\s+c[0-9]+' repro-data/table6_part1.log repro-data/table6_part2a.log \
       repro-data/table6_part3.log repro-data/table6_part4.log \
       repro-data/table6_part5.log 2>/dev/null | awk '!seen[$1]++'
  echo
  echo "rendered table for the c6288/c7552 backtrack-limit sweeps:"
  cat repro-data/table6_part5.txt 2>/dev/null
  echo
  echo "=== E6-E8: Tables 7-9 ==="
  cat repro-data/table7_8_9.txt
  echo
  echo "=== E9: model ablation ==="
  cat repro-data/ablation.txt
} > repro_report.txt
wc -l repro_report.txt
