//! Process-corner analysis — the paper's §V future-work item
//! ("considering parameter variations on the delay model"), made cheap by
//! the analytical model: each corner is a derated technology
//! characterized once.
//!
//! Run with: `cargo run --release --example corner_analysis [circuit]`

use sta_cells::{Corner, Library, Technology};
use sta_charlib::variation::{three_corners, ProcessSpread};
use sta_charlib::{characterize, CharConfig};
use sta_circuits::catalog;
use sta_core::{EnumerationConfig, PathEnumerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "sample".into());
    let lib = Library::standard();
    let nl =
        catalog::mapped(&circuit, &lib)?.ok_or_else(|| format!("unknown benchmark {circuit:?}"))?;
    let spread = ProcessSpread::nominal();
    let corners = three_corners(&Technology::n90(), &spread);
    println!("{circuit}: worst true path across process corners (fast −3σ / typical / slow +3σ)\n");
    let mut rows = Vec::new();
    for tech in &corners {
        let tlib = characterize(&lib, tech, &CharConfig::fast())?;
        let mut cfg = EnumerationConfig::new(Corner::nominal(tech)).with_n_worst(3);
        cfg.max_decisions = 3_000_000;
        let (paths, _) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
        let worst = paths.first().map(|p| p.worst_arrival()).unwrap_or(f64::NAN);
        println!("  {:<12} worst path {:>8.1} ps", tech.name, worst);
        rows.push(worst);
    }
    if let [fast, typ, slow] = rows[..] {
        println!(
            "\nspread: fast {:.1}% / slow +{:.1}% around typical",
            (fast - typ) / typ * 100.0,
            (slow - typ) / typ * 100.0
        );
    }
    Ok(())
}
