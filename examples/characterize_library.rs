//! Library characterization walkthrough: run the paper's one-time
//! parameter-extraction process (§IV.A) over the standard-cell library and
//! report, per cell, the number of arc variants, the fitted polynomial
//! orders and the training residuals.
//!
//! Run with: `cargo run --release --example characterize_library [tech]`

use sta_cells::{Library, Technology};
use sta_charlib::{characterize, CharConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = std::env::args()
        .nth(1)
        .and_then(|s| Technology::by_name(&s))
        .unwrap_or_else(Technology::n90);
    let lib = Library::standard();
    println!("characterizing {} cells for {tech}...", lib.len());
    let cfg = CharConfig::fast();
    let t0 = std::time::Instant::now();
    let tlib = characterize(&lib, &tech, &cfg)?;
    println!("done in {:.1} s\n", t0.elapsed().as_secs_f64());

    println!(
        "{:<7} {:>5} {:>8} {:>14} {:>10} {:>10}",
        "cell", "pins", "variants", "poly orders", "rms (ps)", "Cin (fF)"
    );
    for cell in lib.iter() {
        let ct = tlib.cell(cell.id());
        let variants = ct.variants.len();
        // Representative arc: first variant, input-rise delay model.
        let arc = &ct.variants[0].rise.delay;
        let orders = arc.orders();
        println!(
            "{:<7} {:>5} {:>8} {:>14} {:>10.3} {:>10.2}",
            cell.name(),
            cell.num_pins(),
            variants,
            format!("{:?}", orders),
            arc.training_rms(),
            ct.avg_input_cap,
        );
    }
    let total_variants: usize = tlib.cells.iter().map(|c| c.variants.len()).sum();
    println!(
        "\n{} arc variants characterized ({} delay+slew polynomial models).",
        total_variants,
        total_variants * 4
    );
    println!(
        "Multi-vector cells get one model per sensitization vector — the\n\
         paper's key requirement (AO22 alone has {} variants).",
        tlib.cell(lib.cell_by_name("AO22").expect("standard").id())
            .variants
            .len()
    );
    Ok(())
}
