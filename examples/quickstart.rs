//! Quickstart: build a small mapped circuit, characterize the library,
//! and list every true path with its sensitization vector and delay.
//!
//! Run with: `cargo run --release --example quickstart`

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig};
use sta_core::{EnumerationConfig, PathEnumerator};
use sta_netlist::{GateKind, Netlist};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The standard cell library: simple gates plus the multi-vector
    //    complex gates (AO22, OA12, AOI/OAI...) the DATE'11 paper studies.
    let lib = Library::standard();
    let tech = Technology::n90();
    println!("library: {} cells, technology {tech}", lib.len());

    // 2. One-time characterization: electrical simulation of every
    //    (cell, pin, sensitization vector, edge), polynomial fit.
    //    (`CharConfig::fast()` keeps this example snappy; use
    //    `CharConfig::standard()` and `characterize_cached` for real runs.)
    let tlib = characterize(&lib, &tech, &CharConfig::fast())?;

    // 3. A small circuit with an AO22 on the interesting path.
    let nand2 = lib.cell_by_name("NAND2").expect("standard cell").id();
    let ao22 = lib.cell_by_name("AO22").expect("standard cell").id();
    let inv = lib.cell_by_name("INV").expect("standard cell").id();
    let mut nl = Netlist::new("quickstart");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let d = nl.add_input("d");
    let x = nl.add_gate(GateKind::Cell(nand2), &[a, b], Some("x"))?;
    let y = nl.add_gate(GateKind::Cell(ao22), &[x, b, c, d], Some("y"))?;
    let z = nl.add_gate(GateKind::Cell(inv), &[y], Some("z"))?;
    nl.mark_output(z);

    // 4. Single-pass true-path enumeration: paths sharing a gate sequence
    //    but using different sensitization vectors are distinct and get
    //    different delays.
    let cfg = EnumerationConfig::new(Corner::nominal(&tech));
    let (paths, stats) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
    println!(
        "\n{} true paths ({} input vectors), {} search decisions:",
        paths.len(),
        stats.input_vectors,
        stats.decisions
    );
    for p in &paths {
        println!("  {}", p.describe(&nl, &lib));
        if let Some(fall) = &p.fall {
            println!(
                "      falling launch: {:.1} ps, vector {}",
                fall.arrival,
                p.input_vector_string(&nl, sta_cells::Edge::Fall)
            );
        }
    }
    Ok(())
}
