//! Exports the flow's interchange artifacts for a benchmark: structural
//! Verilog, Graphviz, a simplified Liberty library, and two SDF files —
//! one annotated with reference-vector delays (what a vector-blind flow
//! ships) and one with per-arc worst-vector delays. Diffing the two SDFs
//! shows the paper's phenomenon instance by instance.
//!
//! Run with: `cargo run --release --example export_artifacts [circuit] [outdir]`

use std::fs;
use std::path::PathBuf;

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig};
use sta_circuits::catalog;
use sta_core::{write_sdf, SdfVectorPolicy};
use sta_netlist::dot::{to_dot, DotOptions};
use sta_netlist::verilog::write_module;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "sample".into());
    let outdir = PathBuf::from(args.next().unwrap_or_else(|| "artifacts".into()));
    fs::create_dir_all(&outdir)?;

    let lib = Library::standard();
    let tech = Technology::n90();
    let tlib = characterize(&lib, &tech, &CharConfig::fast())?;
    let nl =
        catalog::mapped(&circuit, &lib)?.ok_or_else(|| format!("unknown benchmark {circuit:?}"))?;
    let corner = Corner::nominal(&tech);

    let verilog = write_module(&nl, |cid| {
        let cell = lib.cell(cid);
        (
            cell.name().to_string(),
            cell.pin_names().to_vec(),
            "Z".to_string(),
        )
    });
    fs::write(outdir.join(format!("{circuit}.v")), verilog)?;

    let dot = to_dot(&nl, &DotOptions::default());
    fs::write(outdir.join(format!("{circuit}.dot")), dot)?;

    let liberty = sta_charlib::liberty::write_liberty(&lib, &tlib);
    fs::write(outdir.join(format!("sta_repro_{}.lib", tech.name)), liberty)?;

    for (policy, suffix) in [
        (SdfVectorPolicy::Reference, "ref"),
        (SdfVectorPolicy::Worst, "worst"),
    ] {
        let sdf = write_sdf(&nl, &lib, &tlib, corner, 60.0, policy);
        fs::write(outdir.join(format!("{circuit}.{suffix}.sdf")), sdf)?;
    }
    println!(
        "wrote {}/{{{c}.v, {c}.dot, sta_repro_{t}.lib, {c}.ref.sdf, {c}.worst.sdf}}",
        outdir.display(),
        c = circuit,
        t = tech.name
    );
    println!("diff the two SDFs to see the per-instance vector-dependent deltas.");
    Ok(())
}
