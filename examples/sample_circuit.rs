//! The paper's Fig. 4 sample circuit end to end: technology-map it, find
//! every sensitization vector of the critical path, and show that the
//! slowest vector is *not* the easiest one (the vector a commercial-style
//! two-step tool commits to).
//!
//! Run with: `cargo run --release --example sample_circuit`

use sta_baseline::{run_baseline, BaselineConfig, Classification};
use sta_cells::{Corner, Edge, Library, Technology};
use sta_charlib::{characterize, CharConfig};
use sta_circuits::{map_netlist, sample_circuit};
use sta_core::{EnumerationConfig, PathEnumerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::standard();
    let tech = Technology::n130();
    let tlib = characterize(&lib, &tech, &CharConfig::fast())?;

    let raw = sample_circuit();
    let nl = map_netlist(&raw, &lib)?;
    println!("sample circuit mapped to {} cells:", nl.num_gates());
    for g in nl.topo_gates() {
        let gate = nl.gate(g);
        if let sta_netlist::GateKind::Cell(c) = gate.kind() {
            println!(
                "  {} -> {}",
                lib.cell(c).name(),
                nl.net_label(gate.output())
            );
        }
    }

    // The developed tool: every vector of every path.
    let cfg = EnumerationConfig::new(Corner::nominal(&tech));
    let (paths, _) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
    let n1 = nl.net_by_name("N1").expect("sample input N1");
    println!("\ndeveloped tool, paths from N1 (falling launch):");
    let mut from_n1: Vec<_> = paths.iter().filter(|p| p.source == n1).collect();
    from_n1.sort_by(|a, b| b.worst_arrival().total_cmp(&a.worst_arrival()));
    for p in &from_n1 {
        if let Some(fall) = &p.fall {
            println!(
                "  {:>7.1} ps  {}",
                fall.arrival,
                p.input_vector_string(&nl, Edge::Fall)
            );
        }
    }

    // The baseline: one vector per path, the easiest to justify.
    let report = run_baseline(&nl, &lib, &tlib, &BaselineConfig::new(20, 1000));
    println!("\ncommercial-style baseline:");
    for bp in report
        .paths
        .iter()
        .filter(|bp| bp.sens.classification == Classification::True)
        .take(3)
    {
        println!(
            "  {:>7.1} ps  vectors {:?}",
            bp.worst_delay(),
            bp.sens.chosen_vectors
        );
    }
    println!(
        "\nThe baseline reports one vector per path; the developed tool shows the\n\
         same gate sequence sensitized {} different ways with different delays —\n\
         the slowest of which the baseline never sees (paper Table 5).",
        from_n1.len()
    );
    Ok(())
}
