//! N-worst true-path report on a catalog benchmark: the "find the N
//! slowest true paths directly" use case the paper's single-pass design
//! enables (no two-step structural-then-sensitize iteration).
//!
//! Run with: `cargo run --release --example nworst_report [circuit] [N]`

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig};
use sta_circuits::catalog;
use sta_core::{EnumerationConfig, PathEnumerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "c432".to_string());
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    let lib = Library::standard();
    let tech = Technology::n90();
    let tlib = characterize(&lib, &tech, &CharConfig::fast())?;
    let nl =
        catalog::mapped(&circuit, &lib)?.ok_or_else(|| format!("unknown benchmark {circuit:?}"))?;
    println!(
        "{}: {} cells, {} inputs, {} outputs",
        circuit,
        nl.num_gates(),
        nl.inputs().len(),
        nl.outputs().len()
    );

    let cfg = EnumerationConfig::new(Corner::nominal(&tech)).with_n_worst(n);
    let t0 = std::time::Instant::now();
    let (paths, stats) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
    println!(
        "enumeration: {:.2} s, {} vectors emitted, {} subtrees pruned{}\n",
        t0.elapsed().as_secs_f64(),
        stats.input_vectors,
        stats.pruned,
        if stats.truncated { " (budget hit)" } else { "" }
    );
    println!("{n}-worst true paths:");
    for (i, p) in paths.iter().enumerate() {
        println!(
            "{:>3}. {:>8.1} ps  {} gates  {} -> {}",
            i + 1,
            p.worst_arrival(),
            p.arcs.len(),
            nl.net_label(p.source),
            nl.net_label(p.endpoint()),
        );
        // Show which complex-gate vectors are in force.
        let complex: Vec<String> = p
            .arcs
            .iter()
            .filter_map(|a| {
                let cell = match nl.gate(a.gate).kind() {
                    sta_netlist::GateKind::Cell(c) => lib.cell(c),
                    sta_netlist::GateKind::Prim(_) => return None,
                };
                (cell.vectors_of(a.pin).len() > 1)
                    .then(|| format!("{} case {}", cell.name(), a.vector + 1))
            })
            .collect();
        if !complex.is_empty() {
            println!("      complex-gate vectors: {}", complex.join(", "));
        }
    }
    Ok(())
}
