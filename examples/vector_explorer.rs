//! Vector explorer: for any library cell, enumerate the sensitization
//! vectors of every pin and electrically measure the per-vector delay —
//! the cell-level analysis behind the paper's Tables 1–4.
//!
//! Run with: `cargo run --release --example vector_explorer [cell] [tech]`

use sta_cells::{Corner, Edge, Library, Technology};
use sta_esim::cellsim::{cell_input_cap, simulate_arc, Drive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let cell_name = args.next().unwrap_or_else(|| "AO22".to_string());
    let tech = args
        .next()
        .and_then(|s| Technology::by_name(&s))
        .unwrap_or_else(Technology::n65);

    let lib = Library::standard();
    let cell = lib
        .cell_by_name(&cell_name)
        .ok_or_else(|| format!("unknown cell {cell_name:?}"))?;
    println!(
        "{} : Z = {}   ({} transistors, {} stages), {tech}",
        cell.name(),
        cell.expr().display(),
        cell.topology().transistor_count(),
        cell.topology().stages.len()
    );
    let corner = Corner::nominal(&tech);
    let load = cell_input_cap(cell, &tech); // one gate of the same type
    for pin in 0..cell.num_pins() {
        let vectors = cell.vectors_of(pin);
        println!(
            "\npin {} — {} sensitization vector{}:",
            sta_cells::func::pin_name(pin),
            vectors.len(),
            if vectors.len() == 1 { "" } else { "s" }
        );
        for v in vectors {
            let mut delays = Vec::new();
            for edge in Edge::BOTH {
                let out = simulate_arc(
                    cell,
                    &tech,
                    corner,
                    v,
                    edge,
                    Drive::Ramp { transition: 50.0 },
                    load,
                )?;
                delays.push(format!(
                    "in-{edge}: {:.1} ps (slew {:.1})",
                    out.delay, out.output_slew
                ));
            }
            println!("  {}  {}", v, delays.join("   "));
        }
        if vectors.len() > 1 {
            // Spread of the falling-input delay across vectors.
            let ds: Vec<f64> = vectors
                .iter()
                .map(|v| {
                    simulate_arc(
                        cell,
                        &tech,
                        corner,
                        v,
                        Edge::Fall,
                        Drive::Ramp { transition: 50.0 },
                        load,
                    )
                    .map(|o| o.delay)
                    .unwrap_or(f64::NAN)
                })
                .collect();
            let (min, max) = ds
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &d| {
                    (a.min(d), b.max(d))
                });
            println!(
                "  → vector-to-vector spread (in-fall): {:.1} %",
                (max - min) / min * 100.0
            );
        }
    }
    Ok(())
}
